//! Molecule property APIs (demo scenario 1's molecule branch).
//!
//! The paper's demo calls external toxicity/solubility predictors; offline,
//! these are substituted by classical structural-descriptor models: the
//! descriptors (ring count, heteroatom fraction, branching, Wiener index) are
//! computed exactly on the graph, and the property scores are fixed
//! deterministic functions of them — the standard pre-neural QSAR approach.

use super::input_graph;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_graph::algo::{components, traversal};
use chatgraph_graph::Graph;
use std::collections::BTreeMap;

/// Average atomic masses of the supported heavy atoms.
fn atomic_mass(symbol: &str) -> f64 {
    match symbol {
        "C" => 12.011,
        "N" => 14.007,
        "O" => 15.999,
        "S" => 32.06,
        "P" => 30.974,
        "H" => 1.008,
        _ => 0.0,
    }
}

/// Structural descriptors of a molecular graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MoleculeDescriptors {
    /// Heavy-atom count.
    pub atoms: usize,
    /// Cyclomatic ring count (`E − V + components`).
    pub rings: i64,
    /// Fraction of non-carbon heavy atoms.
    pub hetero_fraction: f64,
    /// Number of double bonds.
    pub double_bonds: usize,
    /// Fraction of atoms with degree ≥ 3 (branch points).
    pub branching: f64,
    /// Sum of atomic masses.
    pub weight: f64,
    /// Wiener index: sum of pairwise shortest-path distances.
    pub wiener: f64,
}

/// Computes all descriptors in one pass family.
pub fn descriptors(g: &Graph) -> MoleculeDescriptors {
    let atoms = g.node_count();
    let cc = components::connected_components(g).count as i64;
    let rings = g.edge_count() as i64 - atoms as i64 + cc;
    let hetero = g
        .node_ids()
        .filter(|&v| g.node_label(v).expect("live") != "C")
        .count();
    let double_bonds = g
        .edge_ids()
        .filter(|&e| g.edge_label(e).expect("live") == "double")
        .count();
    let branch_points = g.node_ids().filter(|&v| g.total_degree(v) >= 3).count();
    let weight: f64 = g
        .node_ids()
        .map(|v| atomic_mass(g.node_label(v).expect("live")))
        .sum();
    let mut wiener = 0.0;
    for v in g.node_ids() {
        for d in traversal::bfs_distances(g, v, usize::MAX).into_iter().flatten() {
            wiener += d as f64;
        }
    }
    wiener /= 2.0; // each unordered pair was counted twice
    MoleculeDescriptors {
        atoms,
        rings,
        hetero_fraction: if atoms == 0 { 0.0 } else { hetero as f64 / atoms as f64 },
        double_bonds,
        branching: if atoms == 0 { 0.0 } else { branch_points as f64 / atoms as f64 },
        weight,
        wiener,
    }
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Toxicity probability in `[0, 1]`: a fixed logistic model over descriptors
/// (rings, unsaturation, heteroatoms and branching raise the score).
pub fn toxicity_score(d: &MoleculeDescriptors) -> f64 {
    sigmoid(
        -2.2 + 0.55 * d.rings as f64
            + 2.4 * d.hetero_fraction
            + 0.18 * d.double_bonds as f64
            + 1.2 * d.branching
            + 0.004 * d.weight,
    )
}

/// Solubility on a logS-like scale: polar heteroatoms help, large carbon
/// skeletons and rings hurt.
pub fn solubility_score(g: &Graph, d: &MoleculeDescriptors) -> f64 {
    let polar = g
        .node_ids()
        .filter(|&v| matches!(g.node_label(v).expect("live"), "O" | "N"))
        .count() as f64;
    0.8 + 0.9 * polar - 0.065 * d.weight - 0.35 * d.rings as f64
}

/// The empirical molecular formula in Hill order (C, H, then alphabetical).
pub fn formula(g: &Graph) -> String {
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for v in g.node_ids() {
        *counts.entry(g.node_label(v).expect("live").to_owned()).or_default() += 1;
    }
    let mut out = String::new();
    let mut emit = |sym: &str, n: usize| {
        if n == 1 {
            out.push_str(sym);
        } else if n > 1 {
            out.push_str(&format!("{sym}{n}"));
        }
    };
    let c = counts.remove("C").unwrap_or(0);
    let h = counts.remove("H").unwrap_or(0);
    emit("C", c);
    emit("H", h);
    for (sym, n) in counts {
        emit(&sym, n);
    }
    out
}

/// Registers the molecule APIs.
pub fn register(reg: &mut ApiRegistry) {
    use ApiCategory::Molecule;
    use ValueType::*;

    reg.register(
        ApiDescriptor::new(
            "molecular_formula",
            "derive the molecular formula of the chemical molecule from its atoms",
            Molecule, Graph, Text,
        ),
        Box::new(|ctx, input, _| Ok(Value::Text(formula(&input_graph(input, ctx))))),
    );

    reg.register(
        ApiDescriptor::new(
            "molecular_weight",
            "compute the molecular weight of the molecule from atomic masses",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(descriptors(&g).weight))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "ring_count",
            "count the rings or cycles in the molecule",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(descriptors(&g).rings.max(0) as f64))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "heteroatom_fraction",
            "compute the fraction of heteroatoms that are not carbon in the molecule",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(descriptors(&g).hetero_fraction))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "wiener_index",
            "compute the wiener topological index, the sum of distances between atom pairs",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(descriptors(&g).wiener))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "branching_index",
            "measure how branched the molecular skeleton is",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(descriptors(&g).branching))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "predict_toxicity",
            "predict the toxicity probability of the chemical molecule",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            Ok(Value::Number(toxicity_score(&descriptors(&g))))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "predict_solubility",
            "predict the aqueous solubility of the chemical molecule on a logS scale",
            Molecule, Graph, Number,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let d = descriptors(&g);
            Ok(Value::Number(solubility_score(&g, &d)))
        }),
    );

    reg.register(
        ApiDescriptor::new(
            "functional_groups",
            "detect functional groups such as carbonyl hydroxyl and amine in the molecule",
            Molecule, Graph, Table,
        ),
        Box::new(|ctx, input, _| {
            let g = input_graph(input, ctx);
            let mut carbonyl = 0usize; // C=O
            let mut imine = 0usize; // C=N
            let mut hydroxyl = 0usize; // terminal single-bonded O
            let mut amine = 0usize; // C–N single
            let mut thio = 0usize; // any S
            for e in g.edge_ids() {
                let (a, b) = g.edge_endpoints(e).expect("live");
                let (la, lb) = (
                    g.node_label(a).expect("live"),
                    g.node_label(b).expect("live"),
                );
                let double = g.edge_label(e).expect("live") == "double";
                let pair = |x: &str, y: &str| (la == x && lb == y) || (la == y && lb == x);
                if double && pair("C", "O") {
                    carbonyl += 1;
                }
                if double && pair("C", "N") {
                    imine += 1;
                }
                if !double && pair("C", "N") {
                    amine += 1;
                }
                if !double && pair("C", "O") {
                    let o = if la == "O" { a } else { b };
                    if g.total_degree(o) == 1 {
                        hydroxyl += 1;
                    }
                }
            }
            for v in g.node_ids() {
                if g.node_label(v).expect("live") == "S" {
                    thio += 1;
                }
            }
            let mut t = crate::value::Table::new(["group", "count"]);
            t.push_row(["carbonyl (C=O)", &carbonyl.to_string()]);
            t.push_row(["imine (C=N)", &imine.to_string()]);
            t.push_row(["hydroxyl (C-OH)", &hydroxyl.to_string()]);
            t.push_row(["amine (C-N)", &amine.to_string()]);
            t.push_row(["sulfur sites", &thio.to_string()]);
            Ok(Value::Table(t))
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::executor::ExecContext;
    use crate::registry;
    use chatgraph_graph::generators::{molecule, MoleculeParams};
    use chatgraph_graph::GraphBuilder;

    fn run(name: &str, g: Graph) -> Value {
        let reg = registry::standard();
        let mut ctx = ExecContext::new(g);
        reg.call(name, &mut ctx, Value::Unit, &ApiCall::new(name)).unwrap()
    }

    fn co2() -> Graph {
        GraphBuilder::undirected()
            .node("c", "C")
            .node("o1", "O")
            .node("o2", "O")
            .edge("c", "o1", "double")
            .edge("c", "o2", "double")
            .build()
    }

    #[test]
    fn formula_in_hill_order() {
        assert_eq!(formula(&co2()), "CO2");
        let g = GraphBuilder::undirected()
            .node("n", "N")
            .node("c1", "C")
            .node("c2", "C")
            .node("s", "S")
            .build();
        assert_eq!(formula(&g), "C2NS");
        assert_eq!(formula(&Graph::undirected()), "");
    }

    #[test]
    fn weight_of_co2() {
        let w = run("molecular_weight", co2()).as_number().unwrap();
        assert!((w - 44.009).abs() < 0.01, "{w}");
    }

    #[test]
    fn ring_count_of_cycle() {
        let g = GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "C")
            .edge("a", "b", "single")
            .edge("b", "c", "single")
            .edge("c", "a", "single")
            .build();
        assert_eq!(run("ring_count", g).as_number(), Some(1.0));
        assert_eq!(run("ring_count", co2()).as_number(), Some(0.0));
    }

    #[test]
    fn wiener_index_of_path() {
        // C-C-C: distances 1+1+2 = 4
        let g = GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "C")
            .edge("a", "b", "single")
            .edge("b", "c", "single")
            .build();
        assert_eq!(run("wiener_index", g).as_number(), Some(4.0));
    }

    #[test]
    fn toxicity_is_probability_and_monotone_in_rings() {
        let p = MoleculeParams { atoms: 20, rings: 0, double_bond_prob: 0.1 };
        let plain = descriptors(&molecule(&p, 3));
        let ringy = descriptors(&molecule(&MoleculeParams { rings: 4, ..p }, 3));
        let t0 = toxicity_score(&plain);
        let t1 = toxicity_score(&ringy);
        assert!((0.0..=1.0).contains(&t0));
        assert!((0.0..=1.0).contains(&t1));
        assert!(t1 > t0, "rings should raise toxicity: {t0} vs {t1}");
    }

    #[test]
    fn solubility_rewards_polarity() {
        let polar = co2();
        let apolar = GraphBuilder::undirected()
            .node("a", "C").node("b", "C").node("c", "C")
            .edge("a", "b", "single")
            .edge("b", "c", "single")
            .build();
        let sp = run("predict_solubility", polar).as_number().unwrap();
        let sa = run("predict_solubility", apolar).as_number().unwrap();
        assert!(sp > sa, "polar {sp} vs apolar {sa}");
    }

    #[test]
    fn functional_groups_detects_carbonyl_and_hydroxyl() {
        // acetic-acid-like: C-C(=O)-O(H)
        let g = GraphBuilder::undirected()
            .node("c1", "C").node("c2", "C").node("o1", "O").node("o2", "O")
            .edge("c1", "c2", "single")
            .edge("c2", "o1", "double")
            .edge("c2", "o2", "single")
            .build();
        let out = run("functional_groups", g);
        let t = out.as_table().unwrap();
        let get = |name: &str| -> usize {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[1].parse().unwrap()
        };
        assert_eq!(get("carbonyl"), 1);
        assert_eq!(get("hydroxyl"), 1);
        assert_eq!(get("amine"), 0);
    }

    #[test]
    fn descriptors_on_generated_molecules_are_sane() {
        for seed in 0..5 {
            let g = molecule(&MoleculeParams::default(), seed);
            let d = descriptors(&g);
            assert_eq!(d.atoms, g.node_count());
            assert!(d.rings >= 0);
            assert!((0.0..=1.0).contains(&d.hetero_fraction));
            assert!(d.weight > 0.0);
            assert!(d.wiener > 0.0);
        }
    }
}
