//! API chains — the artifact the LLM generates.
//!
//! A chain is an ordered sequence of [`ApiCall`]s. It supports:
//!
//! * **Type checking** against a registry ([`ApiChain::validate`]): every
//!   step's input must be satisfiable by the previous output, by the session
//!   graph (inputs of type `Graph` always can fall back to the uploaded
//!   graph), or by `Unit`/`Any`.
//! * **Graph encoding** ([`ApiChain::to_graph`]): a chain is a labelled path
//!   graph, the representation consumed by the node matching-based loss of
//!   `chatgraph-ged`.
//! * Editing operations (insert/remove/replace a step) for scenario 4's
//!   confirm-and-edit workflow.

use crate::registry::ApiRegistry;
use crate::value::ValueType;
use chatgraph_graph::{Graph, GraphError};
use std::collections::BTreeMap;
use std::fmt;

/// One API invocation in a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiCall {
    /// Registered API name.
    pub api: String,
    /// Free-form string parameters (e.g. `k = "5"`, `pattern = "edge a b"`).
    pub params: BTreeMap<String, String>,
}

chatgraph_support::impl_json_struct!(ApiCall { api, params });

impl ApiCall {
    /// A call with no parameters.
    pub fn new(api: impl Into<String>) -> Self {
        ApiCall {
            api: api.into(),
            params: BTreeMap::new(),
        }
    }

    /// Adds one parameter.
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Reads a numeric parameter with a default.
    ///
    /// A present-but-unparseable value silently falls back to the default;
    /// the analyzer reports that case as a CG006 warning before execution.
    /// Handlers that want the failure surfaced at runtime use
    /// [`ApiCall::try_param_f64`].
    pub fn param_f64(&self, key: &str, default: f64) -> f64 {
        self.params
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Reads an integer parameter with a default (see [`ApiCall::param_f64`]
    /// for the malformed-value contract).
    pub fn param_usize(&self, key: &str, default: usize) -> usize {
        self.params
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Reads a numeric parameter, erroring on a present-but-malformed value
    /// instead of silently defaulting. Absent ⇒ `Ok(default)`.
    pub fn try_param_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("parameter `{key}` is not a number: `{v}`")),
        }
    }

    /// Reads an integer parameter, erroring on a present-but-malformed value
    /// instead of silently defaulting. Absent ⇒ `Ok(default)`.
    pub fn try_param_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("parameter `{key}` is not an integer: `{v}`")),
        }
    }
}

impl fmt::Display for ApiCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.params.is_empty() {
            write!(f, "{}", self.api)
        } else {
            let ps: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(f, "{}({})", self.api, ps.join(", "))
        }
    }
}

/// Chain validation/execution errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A step names an unregistered API.
    UnknownApi(usize, String),
    /// A step's input type cannot be satisfied.
    TypeMismatch {
        /// Step index.
        step: usize,
        /// API at that step.
        api: String,
        /// Declared input type.
        expected: ValueType,
        /// Previous step's output type.
        found: ValueType,
    },
    /// The chain is empty.
    Empty,
    /// Static analysis found Error-level diagnostics; execution refused.
    /// (Belt and braces over [`ApiChain::validate`]: fires only for error
    /// classes the legacy validator does not model.)
    AnalysisRejected(String),
    /// The user rejected a confirmation prompt; execution stopped.
    Rejected(usize, String),
    /// A handler failed.
    ExecutionFailed(usize, String),
    /// A step panicked; the supervisor caught the payload at the worker
    /// boundary instead of letting it unwind into the caller.
    StepPanicked(usize, String),
    /// A step exceeded the configured per-step deadline (milliseconds) and
    /// was cancelled cooperatively.
    StepTimedOut(usize, u64),
    /// A mutation barrier executed but its durable commit failed; the chain
    /// aborts so no later step builds on unlogged state. (The in-memory
    /// mutation stands — the session installs the graph even on failure —
    /// but the store is dead until reopened.)
    CommitFailed(usize, String),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::UnknownApi(i, n) => write!(f, "step {i}: unknown API '{n}'"),
            ChainError::TypeMismatch {
                step,
                api,
                expected,
                found,
            } => write!(
                f,
                "step {step}: API '{api}' expects {expected} but the previous step produced {found}"
            ),
            ChainError::Empty => write!(f, "chain is empty"),
            ChainError::AnalysisRejected(d) => {
                write!(f, "chain rejected by static analysis: {d}")
            }
            ChainError::Rejected(i, n) => write!(f, "step {i}: user rejected '{n}'"),
            ChainError::ExecutionFailed(i, msg) => write!(f, "step {i} failed: {msg}"),
            ChainError::StepPanicked(i, msg) => write!(f, "step {i} panicked: {msg}"),
            ChainError::StepTimedOut(i, ms) => {
                write!(f, "step {i} exceeded its {ms}ms deadline and was cancelled")
            }
            ChainError::CommitFailed(i, msg) => {
                write!(f, "step {i}: durable commit failed: {msg}")
            }
        }
    }
}

impl std::error::Error for ChainError {
    /// Always `None`: every underlying cause (handler error strings, panic
    /// payloads, analyzer renderings) is carried pre-rendered inside the
    /// variant, because errors must be `Clone + Send` to cross the
    /// scheduler's worker boundary — there is no structured inner error to
    /// expose.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

/// An ordered chain of API calls.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ApiChain {
    /// The steps, in execution order.
    pub steps: Vec<ApiCall>,
}

chatgraph_support::impl_json_struct!(ApiChain { steps });

impl ApiChain {
    /// An empty chain.
    pub fn new() -> Self {
        ApiChain::default()
    }

    /// Builds a chain from API names (no parameters).
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ApiChain {
            steps: names.into_iter().map(|n| ApiCall::new(n)).collect(),
        }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the chain has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Appends a step.
    pub fn push(&mut self, call: ApiCall) {
        self.steps.push(call);
    }

    /// Inserts a step at `idx` (scenario 4: chain editing).
    pub fn insert(&mut self, idx: usize, call: ApiCall) {
        self.steps.insert(idx.min(self.steps.len()), call);
    }

    /// Removes the step at `idx`, if present.
    pub fn remove(&mut self, idx: usize) -> Option<ApiCall> {
        (idx < self.steps.len()).then(|| self.steps.remove(idx))
    }

    /// Replaces the step at `idx`; returns the old call.
    pub fn replace(&mut self, idx: usize, call: ApiCall) -> Option<ApiCall> {
        self.steps
            .get_mut(idx)
            .map(|slot| std::mem::replace(slot, call))
    }

    /// API names in order.
    pub fn api_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.api.as_str()).collect()
    }

    /// Type-checks the chain against `registry`.
    ///
    /// `has_session_graph` states whether a graph was uploaded with the
    /// prompt: inputs of type `Graph` fall back to it when the previous
    /// output is not a graph.
    pub fn validate(&self, registry: &ApiRegistry, has_session_graph: bool) -> Result<(), ChainError> {
        if self.steps.is_empty() {
            return Err(ChainError::Empty);
        }
        let mut prev = ValueType::Unit;
        for (i, step) in self.steps.iter().enumerate() {
            let desc = registry
                .descriptor(&step.api)
                .ok_or_else(|| ChainError::UnknownApi(i, step.api.clone()))?;
            let satisfied = desc.input.accepts(prev)
                || (desc.input == ValueType::Graph && has_session_graph)
                || desc.input == ValueType::Unit;
            if !satisfied {
                return Err(ChainError::TypeMismatch {
                    step: i,
                    api: step.api.clone(),
                    expected: desc.input,
                    found: prev,
                });
            }
            prev = desc.output;
        }
        Ok(())
    }

    /// Encodes the chain as a directed path graph whose node labels are API
    /// names and whose edges are labelled `next`. Parameters become node
    /// attributes. This is the form the node matching-based loss compares.
    pub fn to_graph(&self) -> Result<Graph, GraphError> {
        let mut g = Graph::directed();
        g.set_name("api-chain");
        let mut prev = None;
        for step in &self.steps {
            let v = g.add_node(step.api.clone());
            for (k, val) in &step.params {
                g.set_node_attr(v, k.clone(), val.as_str())?;
            }
            if let Some(p) = prev {
                g.add_edge(p, v, "next")?;
            }
            prev = Some(v);
        }
        Ok(g)
    }
}

impl fmt::Display for ApiChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.steps.iter().map(|s| s.to_string()).collect();
        write!(f, "{}", parts.join(" -> "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn chain_error_is_a_std_error_with_uniform_display() {
        let errors: Vec<ChainError> = vec![
            ChainError::UnknownApi(0, "nope".into()),
            ChainError::Empty,
            ChainError::Rejected(1, "remove_edges".into()),
            ChainError::ExecutionFailed(2, "no such node".into()),
            ChainError::StepPanicked(3, "index out of bounds".into()),
            ChainError::StepTimedOut(4, 250),
        ];
        for e in errors {
            let dyn_err: &dyn std::error::Error = &e;
            assert!(dyn_err.source().is_none(), "payloads are pre-rendered");
            let msg = dyn_err.to_string();
            assert!(!msg.is_empty());
            // Step-indexed variants lead with "step <i>" so the REPL and
            // session render every failure uniformly.
            if !matches!(e, ChainError::Empty | ChainError::AnalysisRejected(_)) {
                assert!(msg.starts_with("step "), "non-uniform display: {msg}");
            }
        }
        assert_eq!(
            ChainError::StepTimedOut(4, 250).to_string(),
            "step 4 exceeded its 250ms deadline and was cancelled"
        );
        assert_eq!(
            ChainError::StepPanicked(3, "boom".into()).to_string(),
            "step 3 panicked: boom"
        );
    }

    #[test]
    fn display_joins_with_arrows() {
        let mut c = ApiChain::from_names(["graph_stats", "generate_report"]);
        c.steps[0] = c.steps[0].clone().with_param("k", "5");
        assert_eq!(c.to_string(), "graph_stats(k=5) -> generate_report");
    }

    #[test]
    fn editing_operations() {
        let mut c = ApiChain::from_names(["a", "b", "c"]);
        c.insert(1, ApiCall::new("x"));
        assert_eq!(c.api_names(), vec!["a", "x", "b", "c"]);
        let removed = c.remove(0).unwrap();
        assert_eq!(removed.api, "a");
        c.replace(0, ApiCall::new("y"));
        assert_eq!(c.api_names(), vec!["y", "b", "c"]);
        assert!(c.remove(99).is_none());
        assert!(c.replace(99, ApiCall::new("z")).is_none());
    }

    #[test]
    fn validate_accepts_well_typed_chain() {
        let reg = registry::standard();
        let c = ApiChain::from_names(["detect_communities", "generate_report"]);
        assert!(c.validate(&reg, true).is_ok());
    }

    #[test]
    fn validate_rejects_unknown_api() {
        let reg = registry::standard();
        let c = ApiChain::from_names(["frobnicate"]);
        assert!(matches!(
            c.validate(&reg, true),
            Err(ChainError::UnknownApi(0, _))
        ));
    }

    #[test]
    fn validate_rejects_type_mismatch() {
        let reg = registry::standard();
        // remove_edges wants an EdgeList, but node_count produces a Number.
        let c = ApiChain::from_names(["node_count", "remove_edges"]);
        let err = c.validate(&reg, true).unwrap_err();
        assert!(matches!(err, ChainError::TypeMismatch { step: 1, .. }), "{err}");
    }

    #[test]
    fn validate_rejects_graph_input_without_session_graph() {
        let reg = registry::standard();
        let c = ApiChain::from_names(["graph_stats"]);
        assert!(c.validate(&reg, true).is_ok());
        assert!(matches!(
            c.validate(&reg, false),
            Err(ChainError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn empty_chain_invalid() {
        let reg = registry::standard();
        assert_eq!(ApiChain::new().validate(&reg, true), Err(ChainError::Empty));
    }

    #[test]
    fn to_graph_is_labelled_path() {
        let mut c = ApiChain::from_names(["a", "b", "c"]);
        c.steps[1] = c.steps[1].clone().with_param("k", "3");
        let g = c.to_graph().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.is_directed());
        let labels: Vec<String> = g
            .node_ids()
            .map(|v| g.node_label(v).unwrap().to_owned())
            .collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        let b = g.node_ids().nth(1).unwrap();
        assert_eq!(g.node_attrs(b).unwrap()["k"].as_text(), Some("3"));
    }

    #[test]
    fn param_parsing_defaults() {
        let call = ApiCall::new("x").with_param("k", "7").with_param("bad", "zz");
        assert_eq!(call.param_usize("k", 1), 7);
        assert_eq!(call.param_usize("bad", 1), 1);
        assert_eq!(call.param_f64("missing", 2.5), 2.5);
    }

    #[test]
    fn try_param_surfaces_malformed_values() {
        let call = ApiCall::new("x").with_param("k", "7").with_param("bad", "zz");
        assert_eq!(call.try_param_usize("k", 1), Ok(7));
        assert_eq!(call.try_param_usize("missing", 1), Ok(1));
        assert!(call.try_param_usize("bad", 1).unwrap_err().contains("bad"));
        assert_eq!(call.try_param_f64("missing", 2.5), Ok(2.5));
        assert!(call.try_param_f64("bad", 0.0).is_err());
    }

    #[test]
    fn json_roundtrip() {
        let c = ApiChain::from_names(["a", "b"]);
        let s = chatgraph_support::json::to_string(&c);
        assert_eq!(chatgraph_support::json::from_str::<ApiChain>(&s).unwrap(), c);
    }
}
