//! Typed values exchanged between chained APIs.

use chatgraph_graph::{Graph, NodeId};
use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;
use std::sync::Arc;

/// The static type of a [`Value`], used to validate chains before running
/// them (scenario 4 lets the user edit a generated chain; the validator is
/// what makes editing safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// A property graph.
    Graph,
    /// A scalar number.
    Number,
    /// Free text.
    Text,
    /// A boolean.
    Bool,
    /// A list of node ids (with the session graph as referent).
    NodeList,
    /// A list of `(src, dst, label)` edges.
    EdgeList,
    /// A tabular result.
    Table,
    /// A composed multi-section report.
    Report,
    /// No value (chain start, or side-effect-only APIs).
    Unit,
    /// Accepts anything (report/summary sinks).
    Any,
}

chatgraph_support::impl_json_enum_unit!(ValueType {
    Graph,
    Number,
    Text,
    Bool,
    NodeList,
    EdgeList,
    Table,
    Report,
    Unit,
    Any,
});

impl ValueType {
    /// Whether an input slot of this type accepts a value of type `v`.
    pub fn accepts(self, v: ValueType) -> bool {
        self == ValueType::Any || self == v
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Graph => "graph",
            ValueType::Number => "number",
            ValueType::Text => "text",
            ValueType::Bool => "bool",
            ValueType::NodeList => "node-list",
            ValueType::EdgeList => "edge-list",
            ValueType::Table => "table",
            ValueType::Report => "report",
            ValueType::Unit => "unit",
            ValueType::Any => "any",
        };
        f.write_str(s)
    }
}

/// A tabular API result: headers plus string rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

chatgraph_support::impl_json_struct!(Table { headers, rows });

impl Table {
    /// Builds a table from headers.
    pub fn new<I: IntoIterator<Item = S>, S: Into<String>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (converting cells to strings).
    pub fn push_row<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, row: I) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        for row in &self.rows {
            out.push('\n');
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// A multi-section report (the output of scenario 1's "write a brief
/// report for G").
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Report title.
    pub title: String,
    /// `(heading, body)` sections in order.
    pub sections: Vec<(String, String)>,
}

chatgraph_support::impl_json_struct!(Report { title, sections });

impl Report {
    /// Creates an empty titled report.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn add_section(&mut self, heading: impl Into<String>, body: impl Into<String>) {
        self.sections.push((heading.into(), body.into()));
    }

    /// Renders the report as plain text.
    pub fn to_text(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        for (h, b) in &self.sections {
            out.push_str(&format!("\n## {h}\n{b}\n"));
        }
        out
    }
}

/// A dynamically typed API value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A property graph, shared by reference so passing a graph between
    /// steps (or caching one) never deep-copies it.
    Graph(Arc<Graph>),
    /// A scalar.
    Number(f64),
    /// Free text.
    Text(String),
    /// A boolean.
    Bool(bool),
    /// Node ids in the session graph.
    NodeList(Vec<NodeId>),
    /// `(src, dst, label)` edges.
    EdgeList(Vec<(NodeId, NodeId, String)>),
    /// A table.
    Table(Table),
    /// A report.
    Report(Report),
    /// Nothing.
    Unit,
}


impl ToJson for Value {
    fn to_json(&self) -> Json {
        // serde's externally tagged format: `{"Variant": payload}`, with
        // bare `"Unit"` for the payload-less variant.
        let tagged = |tag: &str, payload: Json| {
            Json::Object(vec![(tag.to_owned(), payload)])
        };
        match self {
            Value::Graph(g) => tagged("Graph", g.to_json()),
            Value::Number(x) => tagged("Number", Json::Float(*x)),
            Value::Text(t) => tagged("Text", Json::Str(t.clone())),
            Value::Bool(b) => tagged("Bool", Json::Bool(*b)),
            Value::NodeList(ns) => tagged("NodeList", ns.to_json()),
            Value::EdgeList(es) => tagged("EdgeList", es.to_json()),
            Value::Table(t) => tagged("Table", t.to_json()),
            Value::Report(r) => tagged("Report", r.to_json()),
            Value::Unit => Json::Str("Unit".to_owned()),
        }
    }
}

impl FromJson for Value {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("Unit") = v.as_str() {
            return Ok(Value::Unit);
        }
        let fields = v.as_object().ok_or_else(|| JsonError::expected("Value object", v))?;
        let (tag, payload) = match fields {
            [(tag, payload)] => (tag.as_str(), payload),
            _ => return Err(JsonError::msg("Value must be a single-key tagged object")),
        };
        match tag {
            "Graph" => Ok(Value::Graph(Arc::new(FromJson::from_json(payload)?))),
            "Number" => Ok(Value::Number(FromJson::from_json(payload)?)),
            "Text" => Ok(Value::Text(FromJson::from_json(payload)?)),
            "Bool" => Ok(Value::Bool(FromJson::from_json(payload)?)),
            "NodeList" => Ok(Value::NodeList(FromJson::from_json(payload)?)),
            "EdgeList" => Ok(Value::EdgeList(FromJson::from_json(payload)?)),
            "Table" => Ok(Value::Table(FromJson::from_json(payload)?)),
            "Report" => Ok(Value::Report(FromJson::from_json(payload)?)),
            other => Err(JsonError::msg(format!("unknown Value variant `{other}`"))),
        }
    }
}

impl Value {
    /// The static type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Graph(_) => ValueType::Graph,
            Value::Number(_) => ValueType::Number,
            Value::Text(_) => ValueType::Text,
            Value::Bool(_) => ValueType::Bool,
            Value::NodeList(_) => ValueType::NodeList,
            Value::EdgeList(_) => ValueType::EdgeList,
            Value::Table(_) => ValueType::Table,
            Value::Report(_) => ValueType::Report,
            Value::Unit => ValueType::Unit,
        }
    }

    /// A one-line human summary (used by the chain monitor's progress feed).
    pub fn summary(&self) -> String {
        match self {
            Value::Graph(g) => format!("graph '{}' ({} nodes, {} edges)", g.name(), g.node_count(), g.edge_count()),
            Value::Number(x) => format!("{x:.4}"),
            Value::Text(t) => {
                if t.len() > 60 {
                    format!("{}…", &t[..t.char_indices().take(59).last().map(|(i, c)| i + c.len_utf8()).unwrap_or(0)])
                } else {
                    t.clone()
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::NodeList(ns) => format!("{} nodes", ns.len()),
            Value::EdgeList(es) => format!("{} edges", es.len()),
            Value::Table(t) => format!("table ({} rows)", t.rows.len()),
            Value::Report(r) => format!("report '{}' ({} sections)", r.title, r.sections.len()),
            Value::Unit => "()".to_owned(),
        }
    }

    /// Extracts a number, if this is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// Extracts text, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Extracts a table, if this is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// Extracts a report, if this is one.
    pub fn as_report(&self) -> Option<&Report> {
        match self {
            Value::Report(r) => Some(r),
            _ => None,
        }
    }

    /// Extracts an edge list, if this is one.
    pub fn as_edge_list(&self) -> Option<&[(NodeId, NodeId, String)]> {
        match self {
            Value::EdgeList(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::GraphBuilder;

    #[test]
    fn type_accepts() {
        assert!(ValueType::Any.accepts(ValueType::Graph));
        assert!(ValueType::Any.accepts(ValueType::Unit));
        assert!(ValueType::Number.accepts(ValueType::Number));
        assert!(!ValueType::Number.accepts(ValueType::Text));
    }

    #[test]
    fn value_types_roundtrip() {
        let g = GraphBuilder::undirected().node("a", "A").build();
        let vals = vec![
            Value::Graph(Arc::new(g)),
            Value::Number(1.5),
            Value::Text("x".into()),
            Value::Bool(true),
            Value::NodeList(vec![]),
            Value::EdgeList(vec![]),
            Value::Table(Table::default()),
            Value::Report(Report::default()),
            Value::Unit,
        ];
        let types = [
            ValueType::Graph,
            ValueType::Number,
            ValueType::Text,
            ValueType::Bool,
            ValueType::NodeList,
            ValueType::EdgeList,
            ValueType::Table,
            ValueType::Report,
            ValueType::Unit,
        ];
        for (v, t) in vals.iter().zip(types) {
            assert_eq!(v.value_type(), t);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["name", "count"]);
        t.push_row(["communities", "4"]);
        t.push_row(["x", "123456"]);
        let text = t.to_text();
        assert!(text.contains("name"));
        assert!(text.lines().count() >= 4);
        // header and rows align on the widest cell
        assert!(text.contains("communities  4"));
    }

    #[test]
    fn report_renders_sections() {
        let mut r = Report::new("Report for G");
        r.add_section("Overview", "120 nodes.");
        let text = r.to_text();
        assert!(text.starts_with("# Report for G"));
        assert!(text.contains("## Overview"));
        assert!(text.contains("120 nodes."));
    }

    #[test]
    fn summaries_are_short_and_informative() {
        assert_eq!(Value::Number(0.5).summary(), "0.5000");
        assert_eq!(Value::Unit.summary(), "()");
        let long = Value::Text("x".repeat(100)).summary();
        assert!(long.chars().count() <= 60);
        assert!(long.ends_with('…'));
    }

    #[test]
    fn json_roundtrip() {
        let v = Value::Table({
            let mut t = Table::new(["a"]);
            t.push_row(["1"]);
            t
        });
        let s = chatgraph_support::json::to_string(&v);
        let back: Value = chatgraph_support::json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
