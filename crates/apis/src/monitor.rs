//! Chain-execution monitoring (demo scenario 4).
//!
//! The paper: "users need to confirm the API chain before it is executed and
//! edit it if needed. What is more, users may also wish to monitor the
//! progress during the execution of the API chain." The [`Monitor`] trait is
//! that surface: the executor emits a [`ChainEvent`] per step and routes
//! confirmation requests (for edit APIs) through the monitor.

use crate::value::ValueType;
use chatgraph_analyzer::diag::Diagnostics;
use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};

/// One progress event during chain execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainEvent {
    /// Pre-execution static analysis produced findings (warnings the UI
    /// surfaces before the chain runs; emitted only when non-empty).
    Diagnostics {
        /// The analyzer's findings.
        diagnostics: Diagnostics,
    },
    /// Execution of the whole chain began (`total` steps).
    ChainStarted {
        /// Number of steps.
        total: usize,
    },
    /// A step began executing.
    StepStarted {
        /// Step index (0-based).
        step: usize,
        /// API name.
        api: String,
    },
    /// A step finished.
    StepFinished {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// Output type.
        output: ValueType,
        /// One-line output summary.
        summary: String,
    },
    /// A step failed; execution stops.
    StepFailed {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// Error message.
        error: String,
    },
    /// The user was asked to confirm a step.
    ConfirmationRequested {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
    },
    /// The whole chain finished successfully.
    ChainFinished,
    /// The chain was lowered to an execution plan (emitted right after
    /// `ChainStarted`). Non-core: absent from the seed executor's stream.
    PlanBuilt {
        /// Number of plan steps.
        steps: usize,
        /// Total dependency edges in the DAG.
        deps: usize,
        /// Number of barrier steps.
        barriers: usize,
        /// Steps whose CSR kernels run with the full worker pool (equals
        /// `steps` when the plan was built without statistics).
        par_kernels: usize,
        /// The cost model's total work estimate (0 without statistics).
        est_cost: u64,
    },
    /// Wall time of one step (after its `StepFinished`). Non-core.
    StepTimed {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// Wall-clock microseconds (lookup time when `cached`).
        micros: u64,
        /// Whether the result came from the memo cache.
        cached: bool,
    },
    /// The scheduler consulted the step-memo cache for a step. Non-core.
    MemoLookup {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// Whether the lookup hit.
        hit: bool,
    },
    /// The step's result was received from a coalesced in-flight execution
    /// (singleflight): an identical step was already running, so this one
    /// parked and took the published outcome instead of executing.
    /// Non-core.
    StepCoalesced {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
    },
    /// A CSR snapshot of the session graph was built for the current
    /// mutation epoch (cache hits emit nothing). Non-core.
    CsrBuilt {
        /// Live nodes in the snapshot.
        nodes: usize,
        /// Live edges in the snapshot.
        edges: usize,
        /// Wall-clock build time in microseconds.
        micros: u64,
        /// Whether the snapshot was patched incrementally from the previous
        /// epoch (delta-CSR) instead of rebuilt from scratch.
        delta: bool,
    },
    /// Wall time of one CSR kernel invocation inside a step. Non-core.
    KernelTimed {
        /// Kernel name (e.g. `"pagerank"`).
        kernel: String,
        /// Wall-clock microseconds.
        micros: u64,
        /// Worker count the kernel policy was running with.
        workers: usize,
    },
    /// The supervisor retried a step after a transient failure. Non-core.
    StepRetried {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// 1-based retry number.
        attempt: usize,
        /// Deterministic backoff slept before the retry, in milliseconds.
        backoff_ms: u64,
        /// The transient failure that triggered the retry.
        error: String,
    },
    /// A step exceeded its deadline and was cancelled cooperatively.
    /// Non-core.
    StepTimedOut {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// The deadline that fired, in milliseconds.
        deadline_ms: u64,
    },
    /// A step panicked; the supervisor caught the payload. Non-core.
    StepPanicked {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// Rendered panic payload.
        message: String,
    },
    /// Under `FailurePolicy::SkipDegraded`, a dead-downstream step failed
    /// soft: its finding is recorded as degraded and the chain continues.
    /// Non-core.
    DegradedResult {
        /// Step index.
        step: usize,
        /// API name.
        api: String,
        /// The failure that was degraded.
        error: String,
    },
    /// A mutation barrier was durably committed to the session's
    /// write-ahead log before its effects were published. Non-core.
    WalAppended {
        /// Step index of the mutation barrier.
        step: usize,
        /// The durable store epoch the commit produced.
        epoch: u64,
        /// WAL records appended by the commit.
        records: usize,
        /// Bytes appended by the commit.
        bytes: u64,
    },
    /// The session's store compacted its write-ahead log. Non-core.
    Checkpointed {
        /// The store epoch the checkpoint captured.
        epoch: u64,
        /// Size of the compacted store file, in bytes.
        bytes: u64,
        /// WAL bytes reclaimed by the compaction.
        reclaimed: u64,
    },
    /// The session's store was opened from an existing file and recovered
    /// to its last durable epoch. Non-core.
    Recovered {
        /// The recovered store epoch.
        epoch: u64,
        /// WAL records replayed into the recovered state.
        records_replayed: usize,
        /// Torn/corrupt tail bytes truncated off the file.
        tail_dropped: u64,
    },
}

impl ChainEvent {
    /// Whether this is one of the seed executor's seven event kinds. The
    /// scheduler's determinism contract is stated over core events only —
    /// plan/timing/cache events may differ across worker counts.
    pub fn is_core(&self) -> bool {
        !matches!(
            self,
            ChainEvent::PlanBuilt { .. }
                | ChainEvent::StepTimed { .. }
                | ChainEvent::MemoLookup { .. }
                | ChainEvent::StepCoalesced { .. }
                | ChainEvent::CsrBuilt { .. }
                | ChainEvent::KernelTimed { .. }
                | ChainEvent::StepRetried { .. }
                | ChainEvent::StepTimedOut { .. }
                | ChainEvent::StepPanicked { .. }
                | ChainEvent::DegradedResult { .. }
                | ChainEvent::WalAppended { .. }
                | ChainEvent::Checkpointed { .. }
                | ChainEvent::Recovered { .. }
        )
    }
}


impl ToJson for ChainEvent {
    fn to_json(&self) -> Json {
        // serde's externally tagged format: `{"Variant": {fields…}}`, with
        // bare `"ChainFinished"` for the payload-less variant.
        let field = |k: &str, v: Json| (k.to_owned(), v);
        let tagged = |tag: &str, fields: Vec<(String, Json)>| {
            Json::Object(vec![(tag.to_owned(), Json::Object(fields))])
        };
        match self {
            ChainEvent::Diagnostics { diagnostics } => tagged(
                "Diagnostics",
                vec![field("diagnostics", diagnostics.to_json())],
            ),
            ChainEvent::ChainStarted { total } => {
                tagged("ChainStarted", vec![field("total", total.to_json())])
            }
            ChainEvent::StepStarted { step, api } => tagged(
                "StepStarted",
                vec![field("step", step.to_json()), field("api", api.to_json())],
            ),
            ChainEvent::StepFinished { step, api, output, summary } => tagged(
                "StepFinished",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("output", output.to_json()),
                    field("summary", summary.to_json()),
                ],
            ),
            ChainEvent::StepFailed { step, api, error } => tagged(
                "StepFailed",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("error", error.to_json()),
                ],
            ),
            ChainEvent::ConfirmationRequested { step, api } => tagged(
                "ConfirmationRequested",
                vec![field("step", step.to_json()), field("api", api.to_json())],
            ),
            ChainEvent::ChainFinished => Json::Str("ChainFinished".to_owned()),
            ChainEvent::PlanBuilt { steps, deps, barriers, par_kernels, est_cost } => tagged(
                "PlanBuilt",
                vec![
                    field("steps", steps.to_json()),
                    field("deps", deps.to_json()),
                    field("barriers", barriers.to_json()),
                    field("par_kernels", par_kernels.to_json()),
                    field("est_cost", est_cost.to_json()),
                ],
            ),
            ChainEvent::StepTimed { step, api, micros, cached } => tagged(
                "StepTimed",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("micros", micros.to_json()),
                    field("cached", cached.to_json()),
                ],
            ),
            ChainEvent::MemoLookup { step, api, hit } => tagged(
                "MemoLookup",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("hit", hit.to_json()),
                ],
            ),
            ChainEvent::StepCoalesced { step, api } => tagged(
                "StepCoalesced",
                vec![field("step", step.to_json()), field("api", api.to_json())],
            ),
            ChainEvent::CsrBuilt { nodes, edges, micros, delta } => tagged(
                "CsrBuilt",
                vec![
                    field("nodes", nodes.to_json()),
                    field("edges", edges.to_json()),
                    field("micros", micros.to_json()),
                    field("delta", delta.to_json()),
                ],
            ),
            ChainEvent::KernelTimed { kernel, micros, workers } => tagged(
                "KernelTimed",
                vec![
                    field("kernel", kernel.to_json()),
                    field("micros", micros.to_json()),
                    field("workers", workers.to_json()),
                ],
            ),
            ChainEvent::StepRetried { step, api, attempt, backoff_ms, error } => tagged(
                "StepRetried",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("attempt", attempt.to_json()),
                    field("backoff_ms", backoff_ms.to_json()),
                    field("error", error.to_json()),
                ],
            ),
            ChainEvent::StepTimedOut { step, api, deadline_ms } => tagged(
                "StepTimedOut",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("deadline_ms", deadline_ms.to_json()),
                ],
            ),
            ChainEvent::StepPanicked { step, api, message } => tagged(
                "StepPanicked",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("message", message.to_json()),
                ],
            ),
            ChainEvent::DegradedResult { step, api, error } => tagged(
                "DegradedResult",
                vec![
                    field("step", step.to_json()),
                    field("api", api.to_json()),
                    field("error", error.to_json()),
                ],
            ),
            ChainEvent::WalAppended { step, epoch, records, bytes } => tagged(
                "WalAppended",
                vec![
                    field("step", step.to_json()),
                    field("epoch", epoch.to_json()),
                    field("records", records.to_json()),
                    field("bytes", bytes.to_json()),
                ],
            ),
            ChainEvent::Checkpointed { epoch, bytes, reclaimed } => tagged(
                "Checkpointed",
                vec![
                    field("epoch", epoch.to_json()),
                    field("bytes", bytes.to_json()),
                    field("reclaimed", reclaimed.to_json()),
                ],
            ),
            ChainEvent::Recovered { epoch, records_replayed, tail_dropped } => tagged(
                "Recovered",
                vec![
                    field("epoch", epoch.to_json()),
                    field("records_replayed", records_replayed.to_json()),
                    field("tail_dropped", tail_dropped.to_json()),
                ],
            ),
        }
    }
}

impl FromJson for ChainEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if let Some("ChainFinished") = v.as_str() {
            return Ok(ChainEvent::ChainFinished);
        }
        let fields = v
            .as_object()
            .ok_or_else(|| JsonError::expected("ChainEvent object", v))?;
        let (tag, payload) = match fields {
            [(tag, payload)] => (tag.as_str(), payload),
            _ => return Err(JsonError::msg("ChainEvent must be a single-key tagged object")),
        };
        let get = |name: &str| {
            payload
                .get(name)
                .ok_or_else(|| JsonError::missing_field("ChainEvent", name))
        };
        match tag {
            "Diagnostics" => Ok(ChainEvent::Diagnostics {
                diagnostics: FromJson::from_json(get("diagnostics")?)?,
            }),
            "ChainStarted" => Ok(ChainEvent::ChainStarted {
                total: FromJson::from_json(get("total")?)?,
            }),
            "StepStarted" => Ok(ChainEvent::StepStarted {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
            }),
            "StepFinished" => Ok(ChainEvent::StepFinished {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                output: FromJson::from_json(get("output")?)?,
                summary: FromJson::from_json(get("summary")?)?,
            }),
            "StepFailed" => Ok(ChainEvent::StepFailed {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                error: FromJson::from_json(get("error")?)?,
            }),
            "ConfirmationRequested" => Ok(ChainEvent::ConfirmationRequested {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
            }),
            "PlanBuilt" => Ok(ChainEvent::PlanBuilt {
                steps: FromJson::from_json(get("steps")?)?,
                deps: FromJson::from_json(get("deps")?)?,
                barriers: FromJson::from_json(get("barriers")?)?,
                par_kernels: FromJson::from_json(get("par_kernels")?)?,
                est_cost: FromJson::from_json(get("est_cost")?)?,
            }),
            "StepTimed" => Ok(ChainEvent::StepTimed {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                micros: FromJson::from_json(get("micros")?)?,
                cached: FromJson::from_json(get("cached")?)?,
            }),
            "MemoLookup" => Ok(ChainEvent::MemoLookup {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                hit: FromJson::from_json(get("hit")?)?,
            }),
            "StepCoalesced" => Ok(ChainEvent::StepCoalesced {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
            }),
            "CsrBuilt" => Ok(ChainEvent::CsrBuilt {
                nodes: FromJson::from_json(get("nodes")?)?,
                edges: FromJson::from_json(get("edges")?)?,
                micros: FromJson::from_json(get("micros")?)?,
                delta: FromJson::from_json(get("delta")?)?,
            }),
            "KernelTimed" => Ok(ChainEvent::KernelTimed {
                kernel: FromJson::from_json(get("kernel")?)?,
                micros: FromJson::from_json(get("micros")?)?,
                workers: FromJson::from_json(get("workers")?)?,
            }),
            "StepRetried" => Ok(ChainEvent::StepRetried {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                attempt: FromJson::from_json(get("attempt")?)?,
                backoff_ms: FromJson::from_json(get("backoff_ms")?)?,
                error: FromJson::from_json(get("error")?)?,
            }),
            "StepTimedOut" => Ok(ChainEvent::StepTimedOut {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                deadline_ms: FromJson::from_json(get("deadline_ms")?)?,
            }),
            "StepPanicked" => Ok(ChainEvent::StepPanicked {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                message: FromJson::from_json(get("message")?)?,
            }),
            "DegradedResult" => Ok(ChainEvent::DegradedResult {
                step: FromJson::from_json(get("step")?)?,
                api: FromJson::from_json(get("api")?)?,
                error: FromJson::from_json(get("error")?)?,
            }),
            "WalAppended" => Ok(ChainEvent::WalAppended {
                step: FromJson::from_json(get("step")?)?,
                epoch: FromJson::from_json(get("epoch")?)?,
                records: FromJson::from_json(get("records")?)?,
                bytes: FromJson::from_json(get("bytes")?)?,
            }),
            "Checkpointed" => Ok(ChainEvent::Checkpointed {
                epoch: FromJson::from_json(get("epoch")?)?,
                bytes: FromJson::from_json(get("bytes")?)?,
                reclaimed: FromJson::from_json(get("reclaimed")?)?,
            }),
            "Recovered" => Ok(ChainEvent::Recovered {
                epoch: FromJson::from_json(get("epoch")?)?,
                records_replayed: FromJson::from_json(get("records_replayed")?)?,
                tail_dropped: FromJson::from_json(get("tail_dropped")?)?,
            }),
            other => Err(JsonError::msg(format!("unknown ChainEvent variant `{other}`"))),
        }
    }
}

/// Receiver of chain-execution events and confirmation requests.
pub trait Monitor {
    /// Called for every progress event.
    fn on_event(&mut self, event: &ChainEvent);

    /// Called before a step flagged `requires_confirmation` runs. Returning
    /// `false` aborts the chain with [`crate::ChainError::Rejected`].
    fn confirm(&mut self, step: usize, api: &str, preview: &str) -> bool {
        let _ = (step, api, preview);
        true
    }
}

/// A monitor that discards events and confirms everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentMonitor;

impl Monitor for SilentMonitor {
    fn on_event(&mut self, _event: &ChainEvent) {}
}

/// A monitor that records every event, with scripted confirmation answers —
/// the test double, and the transcript source for the chat UI.
#[derive(Debug, Default, Clone)]
pub struct CollectingMonitor {
    /// Every event, in order.
    pub events: Vec<ChainEvent>,
    /// Answers returned by successive `confirm` calls (exhausted ⇒ `true`).
    pub confirmations: std::collections::VecDeque<bool>,
    /// The `(step, api, preview)` of every confirmation request.
    pub confirm_log: Vec<(usize, String, String)>,
}

impl CollectingMonitor {
    /// A monitor confirming everything.
    pub fn new() -> Self {
        CollectingMonitor::default()
    }

    /// A monitor answering confirmations from a script.
    pub fn with_answers<I: IntoIterator<Item = bool>>(answers: I) -> Self {
        CollectingMonitor {
            confirmations: answers.into_iter().collect(),
            ..Default::default()
        }
    }

    /// Names of APIs whose steps finished.
    pub fn finished_apis(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ChainEvent::StepFinished { api, .. } => Some(api.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl Monitor for CollectingMonitor {
    fn on_event(&mut self, event: &ChainEvent) {
        self.events.push(event.clone());
    }

    fn confirm(&mut self, step: usize, api: &str, preview: &str) -> bool {
        self.confirm_log
            .push((step, api.to_owned(), preview.to_owned()));
        self.confirmations.pop_front().unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_monitor_records_events() {
        let mut m = CollectingMonitor::new();
        m.on_event(&ChainEvent::ChainStarted { total: 2 });
        m.on_event(&ChainEvent::StepFinished {
            step: 0,
            api: "x".into(),
            output: ValueType::Number,
            summary: "1".into(),
        });
        assert_eq!(m.events.len(), 2);
        assert_eq!(m.finished_apis(), vec!["x"]);
    }

    #[test]
    fn scripted_confirmations_then_default_true() {
        let mut m = CollectingMonitor::with_answers([false, true]);
        assert!(!m.confirm(0, "remove_edges", "3 edges"));
        assert!(m.confirm(1, "add_edges", "2 edges"));
        assert!(m.confirm(2, "remove_edges", "1 edge"));
        assert_eq!(m.confirm_log.len(), 3);
    }

    #[test]
    fn diagnostics_event_json_roundtrip() {
        use chatgraph_analyzer::diag::{Diagnostic, Span};
        let mut d = Diagnostics::new();
        d.push(
            Diagnostic::new(
                "CG010",
                Span::Step { step: 1, param: None },
                "`remove_edges` will ask for confirmation",
            )
            .with_suggestion("review the step before confirming"),
        );
        let e = ChainEvent::Diagnostics { diagnostics: d };
        let s = chatgraph_support::json::to_string(&e);
        assert_eq!(
            chatgraph_support::json::from_str::<ChainEvent>(&s).unwrap(),
            e
        );
    }

    #[test]
    fn plan_events_json_roundtrip_and_are_non_core() {
        let events = [
            ChainEvent::PlanBuilt { steps: 4, deps: 3, barriers: 1, par_kernels: 2, est_cost: 9000 },
            ChainEvent::StepTimed { step: 2, api: "node_count".into(), micros: 17, cached: true },
            ChainEvent::MemoLookup { step: 2, api: "node_count".into(), hit: false },
            ChainEvent::StepCoalesced { step: 2, api: "triangle_count".into() },
            ChainEvent::CsrBuilt { nodes: 120, edges: 640, micros: 85, delta: true },
            ChainEvent::KernelTimed { kernel: "pagerank".into(), micros: 412, workers: 4 },
            ChainEvent::StepRetried {
                step: 1,
                api: "top_pagerank".into(),
                attempt: 1,
                backoff_ms: 3,
                error: "injected fault (step 1, attempt 0)".into(),
            },
            ChainEvent::StepTimedOut { step: 2, api: "graph_diameter".into(), deadline_ms: 50 },
            ChainEvent::StepPanicked { step: 0, api: "node_count".into(), message: "boom".into() },
            ChainEvent::DegradedResult {
                step: 3,
                api: "triangle_count".into(),
                error: "exceeded the 50ms step deadline".into(),
            },
            ChainEvent::WalAppended { step: 1, epoch: 12, records: 3, bytes: 512 },
            ChainEvent::Checkpointed { epoch: 12, bytes: 8192, reclaimed: 40960 },
            ChainEvent::Recovered { epoch: 11, records_replayed: 35, tail_dropped: 17 },
        ];
        for e in events {
            assert!(!e.is_core());
            let s = chatgraph_support::json::to_string(&e);
            assert_eq!(chatgraph_support::json::from_str::<ChainEvent>(&s).unwrap(), e);
        }
        assert!(ChainEvent::ChainFinished.is_core());
        assert!(ChainEvent::ChainStarted { total: 1 }.is_core());
    }

    #[test]
    fn silent_monitor_confirms() {
        let mut m = SilentMonitor;
        m.on_event(&ChainEvent::ChainFinished);
        assert!(m.confirm(0, "x", ""));
    }
}
