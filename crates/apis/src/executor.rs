//! Chain execution.
//!
//! [`execute_chain`] is the public entry point; since the plan refactor it
//! is a thin wrapper over a 1-worker [`crate::sched::Scheduler`], so its
//! behaviour and event contract are exactly those of the historical
//! sequential executor. That historical executor survives verbatim as
//! [`execute_chain_reference`] — the differential oracle the plan property
//! tests compare against.

use crate::chain::{ApiChain, ChainError};
use crate::monitor::{ChainEvent, Monitor};
use crate::registry::ApiRegistry;
use crate::value::{Value, ValueType};
use chatgraph_graph::csr::{CsrBuild, CsrCache, CsrGraph};
use chatgraph_graph::kernels::KernelPolicy;
use chatgraph_graph::stats::{CatalogCache, StatsCatalog};
use chatgraph_graph::Graph;
use std::sync::{Arc, Mutex};

/// Findings beyond this count store a one-line summary instead of the full
/// value, so long chains don't pin every intermediate result in memory.
pub const MAX_FULL_FINDINGS: usize = 32;

/// Shared CSR-kernel state threaded through a chain execution: the epoch
/// cache of snapshots, the chunking policy, and a log of kernel timings.
///
/// The cache and log are behind [`Arc`], so cloning the context for a
/// worker-local execution (the parallel scheduler does this per step)
/// shares one cache across every worker in the chain: a snapshot built by
/// any step of an epoch serves all of them, and the scheduler drains build
/// records and timings into [`ChainEvent::CsrBuilt`] /
/// [`ChainEvent::KernelTimed`] events after each segment.
#[derive(Debug, Clone)]
pub struct KernelState {
    cache: Arc<CsrCache>,
    /// Statistics catalogs per mutation epoch, feeding the planner's cost
    /// model (same `Arc`-identity epoch rule as the CSR cache).
    catalogs: Arc<CatalogCache>,
    /// Worker/chunk policy handed to every kernel invocation.
    pub policy: KernelPolicy,
    timings: Arc<Mutex<Vec<(String, u64, usize)>>>,
    /// Build records for snapshots *this context* caused, even when the
    /// cache itself is shared across sessions — monitoring events must not
    /// leak between tenants.
    builds: Arc<Mutex<Vec<CsrBuild>>>,
}

impl Default for KernelState {
    fn default() -> Self {
        KernelState::with_cache(Arc::new(CsrCache::default()))
    }
}

impl KernelState {
    /// A kernel state over an existing (possibly shared, cross-session)
    /// snapshot cache, with its own timing and build logs.
    pub fn with_cache(cache: Arc<CsrCache>) -> Self {
        KernelState {
            cache,
            catalogs: Arc::new(CatalogCache::default()),
            policy: KernelPolicy::sequential(),
            timings: Arc::new(Mutex::new(Vec::new())),
            builds: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Replaces the statistics-catalog cache with a shared (possibly
    /// cross-session) one — catalogs carry no tenant data, only counts.
    pub fn with_catalogs(mut self, catalogs: Arc<CatalogCache>) -> Self {
        self.catalogs = catalogs;
        self
    }

    /// The statistics catalog for `g`'s mutation epoch, cached by `Arc`
    /// identity like CSR snapshots. The scheduler prices plan steps with it.
    pub fn catalog(&self, g: &Arc<Graph>) -> Arc<StatsCatalog> {
        self.catalogs.get_or_build(g)
    }

    /// The CSR snapshot for `g`, cached per mutation epoch (`Arc` identity;
    /// copy-on-write mutation always allocates a new `Arc`, see
    /// `chatgraph_graph::csr`).
    pub fn csr(&self, g: &Arc<Graph>) -> Arc<CsrGraph> {
        let (csr, built) = self.cache.get_or_build_tracked(g);
        if let Some(b) = built {
            // lockdoc: recover(build log is append-only plain records; a panicked push cannot tear it)
            self.builds
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(b);
        }
        csr
    }

    /// Runs `f`, recording its wall time and the worker count in force
    /// under `kernel` for the next [`KernelState::drain_timings`].
    pub fn time<T>(&self, kernel: &str, f: impl FnOnce() -> T) -> T {
        let started = std::time::Instant::now();
        let out = f();
        let micros = started.elapsed().as_micros() as u64;
        // lockdoc: recover(timing log is append-only plain records; a panicked push cannot tear it)
        self.timings
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((kernel.to_owned(), micros, self.policy.workers));
        out
    }

    /// Drains `(kernel, micros, workers)` records accumulated since the
    /// last drain.
    pub fn drain_timings(&self) -> Vec<(String, u64, usize)> {
        // lockdoc: recover(draining a possibly-short log after a panic loses only metrics, not results)
        std::mem::take(&mut *self.timings.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Drains CSR build records this context accumulated since the last
    /// drain (never another tenant's, even on a shared cache).
    pub fn drain_builds(&self) -> Vec<CsrBuild> {
        // lockdoc: recover(draining a possibly-short log after a panic loses only metrics, not results)
        std::mem::take(&mut *self.builds.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Mutable state a chain executes against.
///
/// The session graph and database are behind [`Arc`] so read-only steps can
/// share them across worker threads without deep copies; edit APIs go
/// through [`ExecContext::graph_mut`], which copies-on-write only when the
/// graph is actually shared at mutation time.
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// The session graph uploaded with the prompt. Edit APIs mutate it via
    /// [`ExecContext::graph_mut`].
    pub graph: Arc<Graph>,
    /// The molecule database used by similarity-search APIs (scenario 2).
    pub database: Arc<Vec<Graph>>,
    /// Per-step findings `(api name, output)`, consumed by report APIs.
    pub findings: Vec<(String, Value)>,
    /// Seed for any randomised analysis (community tie-breaking etc.).
    pub seed: u64,
    /// Shared CSR snapshot cache, kernel policy, and timing log.
    pub kernels: KernelState,
}

impl ExecContext {
    /// A context over one uploaded graph (owned or already shared).
    pub fn new(graph: impl Into<Arc<Graph>>) -> Self {
        ExecContext {
            graph: graph.into(),
            database: Arc::new(Vec::new()),
            findings: Vec::new(),
            seed: 0,
            kernels: KernelState::default(),
        }
    }

    /// Attaches a graph database for similarity search.
    pub fn with_database(mut self, database: impl Into<Arc<Vec<Graph>>>) -> Self {
        self.database = database.into();
        self
    }

    /// Sets the analysis seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the kernel state — sessions route a shared (global) CSR
    /// cache in here while keeping per-context timing and build logs.
    pub fn with_kernels(mut self, kernels: KernelState) -> Self {
        self.kernels = kernels;
        self
    }

    /// Mutable access to the session graph. Copies-on-write: if the graph
    /// is currently shared (a step input, a memo entry, a worker snapshot),
    /// the clone happens here — exactly once per mutation barrier — instead
    /// of once per read as before the plan refactor.
    pub fn graph_mut(&mut self) -> &mut Graph {
        Arc::make_mut(&mut self.graph)
    }

    /// Takes the session graph out of the context, cloning only if it is
    /// still shared elsewhere.
    pub fn into_graph(self) -> Graph {
        let ExecContext { graph, kernels, .. } = self;
        // The CSR cache pins graph epochs; drop it first so an un-mutated
        // session graph can still be unwrapped without a deep clone.
        drop(kernels);
        Arc::try_unwrap(graph).unwrap_or_else(|shared| (*shared).clone())
    }

    /// The CSR snapshot of the current session graph, cached per mutation
    /// epoch. Hot analysis handlers route through this.
    pub fn csr(&self) -> Arc<CsrGraph> {
        self.kernels.csr(&self.graph)
    }

    /// Records one step's output, summarising past [`MAX_FULL_FINDINGS`].
    pub fn push_finding(&mut self, api: &str, output: &Value) {
        let stored = if self.findings.len() < MAX_FULL_FINDINGS {
            output.clone()
        } else {
            Value::Text(output.summary())
        };
        self.findings.push((api.to_owned(), stored));
    }
}

/// Executes a validated chain.
///
/// * The chain is refused up front when validation or static analysis finds
///   Error-level problems; Warning-level diagnostics (parameter lints,
///   discarded outputs, confirmation notices) are emitted to the monitor as
///   one [`ChainEvent::Diagnostics`] event before execution starts.
/// * Each step's input is the previous step's output when the types accept
///   it, else the session graph for `Graph` inputs, else `Unit`.
/// * Steps flagged `requires_confirmation` ask the monitor first; a `false`
///   answer aborts with [`ChainError::Rejected`] (scenario 3's user-in-the-
///   loop cleaning, scenario 4's chain confirmation).
/// * Every step's output is appended to [`ExecContext::findings`] so report
///   APIs can compose everything the chain discovered.
///
/// Returns the final step's output. Execution runs through the plan
/// scheduler with a single worker; multi-worker execution is available via
/// [`crate::sched::Scheduler`] and is guaranteed to produce the same final
/// value, findings order, and core event sequence.
pub fn execute_chain(
    registry: &ApiRegistry,
    chain: &ApiChain,
    ctx: &mut ExecContext,
    monitor: &mut dyn Monitor,
) -> Result<Value, ChainError> {
    crate::sched::Scheduler::new(1).execute(registry, chain, ctx, monitor)
}

/// The pre-plan sequential executor, kept as the differential oracle for
/// the scheduler's determinism contract (see `tests/plan_properties.rs`).
/// Event-for-event identical to the seed implementation; the only change is
/// that graph inputs are shared via [`Arc`] instead of deep-cloned.
pub fn execute_chain_reference(
    registry: &ApiRegistry,
    chain: &ApiChain,
    ctx: &mut ExecContext,
    monitor: &mut dyn Monitor,
) -> Result<Value, ChainError> {
    chain.validate(registry, true)?;
    let diagnostics = crate::analysis::analyze(chain, registry, true);
    if !diagnostics.is_empty() {
        monitor.on_event(&ChainEvent::Diagnostics {
            diagnostics: diagnostics.clone(),
        });
    }
    if let Some(err) = diagnostics.first_error() {
        return Err(ChainError::AnalysisRejected(err.render()));
    }
    monitor.on_event(&ChainEvent::ChainStarted {
        total: chain.len(),
    });
    let mut prev = Value::Unit;
    for (i, step) in chain.steps.iter().enumerate() {
        // validate() plus the analysis gate above guarantee the API exists.
        let Some(desc) = registry.descriptor(&step.api).cloned() else {
            return Err(ChainError::UnknownApi(i, step.api.clone()));
        };
        monitor.on_event(&ChainEvent::StepStarted {
            step: i,
            api: step.api.clone(),
        });
        let input = if desc.input.accepts(prev.value_type()) {
            prev.clone()
        } else if desc.input == ValueType::Graph {
            Value::Graph(Arc::clone(&ctx.graph))
        } else {
            Value::Unit
        };
        if desc.requires_confirmation {
            monitor.on_event(&ChainEvent::ConfirmationRequested {
                step: i,
                api: step.api.clone(),
            });
            if !monitor.confirm(i, &step.api, &input.summary()) {
                return Err(ChainError::Rejected(i, step.api.clone()));
            }
        }
        match registry.call(&step.api, ctx, input, step) {
            Ok(output) => {
                ctx.push_finding(&step.api, &output);
                monitor.on_event(&ChainEvent::StepFinished {
                    step: i,
                    api: step.api.clone(),
                    output: output.value_type(),
                    summary: output.summary(),
                });
                prev = output;
            }
            Err(msg) => {
                monitor.on_event(&ChainEvent::StepFailed {
                    step: i,
                    api: step.api.clone(),
                    error: msg.clone(),
                });
                return Err(ChainError::ExecutionFailed(i, msg));
            }
        }
    }
    monitor.on_event(&ChainEvent::ChainFinished);
    Ok(prev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiChain;
    use crate::monitor::CollectingMonitor;
    use crate::registry;
    use chatgraph_graph::generators::{social_network, SocialParams};

    fn ctx() -> ExecContext {
        ExecContext::new(social_network(&SocialParams::default(), 1))
    }

    #[test]
    fn executes_simple_chain_and_collects_findings() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "graph_stats", "generate_report"]);
        let mut ctx = ctx();
        let mut mon = CollectingMonitor::new();
        let out = execute_chain(&reg, &chain, &mut ctx, &mut mon).unwrap();
        assert_eq!(out.value_type(), ValueType::Report);
        assert_eq!(ctx.findings.len(), 3);
        assert_eq!(
            mon.finished_apis(),
            vec!["node_count", "graph_stats", "generate_report"]
        );
        assert!(matches!(mon.events.first(), Some(ChainEvent::ChainStarted { total: 3 })));
        assert!(matches!(mon.events.last(), Some(ChainEvent::ChainFinished)));
    }

    #[test]
    fn invalid_chain_is_rejected_before_running() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["nonexistent_api"]);
        let mut ctx = ctx();
        let mut mon = CollectingMonitor::new();
        let err = execute_chain(&reg, &chain, &mut ctx, &mut mon).unwrap_err();
        assert!(matches!(err, ChainError::UnknownApi(0, _)));
        assert!(mon.events.is_empty(), "nothing should have started");
    }

    #[test]
    fn rejection_stops_execution() {
        let reg = registry::standard();
        // detect → remove requires confirmation; answer "no".
        let chain = ApiChain::from_names(["detect_incorrect_edges", "remove_edges"]);
        let mut kg_ctx = ExecContext::new(chatgraph_graph::generators::knowledge_graph(
            &chatgraph_graph::generators::KgParams::default(),
            3,
        ));
        let mut mon = CollectingMonitor::with_answers([false]);
        let err = execute_chain(&reg, &chain, &mut kg_ctx, &mut mon).unwrap_err();
        assert_eq!(err, ChainError::Rejected(1, "remove_edges".to_owned()));
        assert_eq!(mon.confirm_log.len(), 1);
    }

    #[test]
    fn prev_output_feeds_matching_input() {
        let reg = registry::standard();
        // largest_component outputs Graph; node_count takes Graph → chained.
        let chain = ApiChain::from_names(["largest_component", "node_count"]);
        let mut ctx = ctx();
        let n = ctx.graph.node_count() as f64;
        let mut mon = CollectingMonitor::new();
        let out = execute_chain(&reg, &chain, &mut ctx, &mut mon).unwrap();
        let count = out.as_number().unwrap();
        assert!(count <= n);
        assert!(count > 0.0);
    }

    #[test]
    fn copy_on_write_clones_only_when_shared() {
        let g = social_network(&SocialParams::default(), 1);
        let mut ctx = ExecContext::new(g);
        // Unshared: mutation must not clone.
        let before = Arc::as_ptr(&ctx.graph);
        ctx.graph_mut().set_name("renamed");
        assert_eq!(before, Arc::as_ptr(&ctx.graph), "no clone while unshared");
        // Shared: mutation clones once, the snapshot stays intact.
        let snapshot = Arc::clone(&ctx.graph);
        ctx.graph_mut().set_name("renamed-again");
        assert_eq!(snapshot.name(), "renamed");
        assert_eq!(ctx.graph.name(), "renamed-again");
    }

    #[test]
    fn findings_cap_summarises_past_limit() {
        let g = social_network(&SocialParams::default(), 1);
        let mut ctx = ExecContext::new(g);
        let big = Value::Text("x".repeat(500));
        for _ in 0..(MAX_FULL_FINDINGS + 3) {
            ctx.push_finding("node_count", &big);
        }
        assert_eq!(ctx.findings.len(), MAX_FULL_FINDINGS + 3);
        // Early findings keep the full value; late ones hold the summary.
        assert_eq!(ctx.findings[0].1, big);
        let (_, last) = ctx.findings.last().unwrap();
        assert_eq!(last, &Value::Text(big.summary()));
    }
}

#[cfg(test)]
mod failure_tests {
    use super::*;
    use crate::chain::ApiChain;
    use crate::monitor::{ChainEvent, CollectingMonitor};
    use crate::registry;
    use chatgraph_graph::generators::{molecule, MoleculeParams};

    /// A handler error mid-chain surfaces as ExecutionFailed, emits a
    /// StepFailed event, stops the chain, and keeps earlier findings.
    #[test]
    fn handler_failure_stops_chain_with_event() {
        let reg = registry::standard();
        // similarity_search fails without a database in the context.
        let chain = ApiChain::from_names(["node_count", "similarity_search", "edge_count"]);
        let mut ctx = ExecContext::new(molecule(&MoleculeParams::default(), 1));
        let mut mon = CollectingMonitor::new();
        let err = execute_chain(&reg, &chain, &mut ctx, &mut mon).unwrap_err();
        assert!(matches!(err, ChainError::ExecutionFailed(1, _)), "{err}");
        assert_eq!(ctx.findings.len(), 1, "only the first step succeeded");
        assert!(mon.events.iter().any(|e| matches!(
            e,
            ChainEvent::StepFailed { step: 1, .. }
        )));
        // The chain never reached step 2.
        assert!(!mon.finished_apis().contains(&"edge_count"));
        assert!(!mon.events.iter().any(|e| matches!(e, ChainEvent::ChainFinished)));
    }

    /// The executor falls back to the session graph when the previous output
    /// does not match a Graph input (Number → Graph transition).
    #[test]
    fn graph_input_falls_back_to_session_graph() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "edge_count"]);
        let g = molecule(&MoleculeParams::default(), 2);
        let (n, m) = (g.node_count() as f64, g.edge_count() as f64);
        let mut ctx = ExecContext::new(g);
        let out = execute_chain(&reg, &chain, &mut ctx, &mut crate::monitor::SilentMonitor).unwrap();
        assert_eq!(out.as_number(), Some(m));
        assert_eq!(ctx.findings[0].1.as_number(), Some(n));
    }

    /// Findings keep execution order and full values.
    #[test]
    fn findings_are_ordered_and_typed() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["molecular_formula", "ring_count", "graph_stats"]);
        let mut ctx = ExecContext::new(molecule(&MoleculeParams::default(), 3));
        execute_chain(&reg, &chain, &mut ctx, &mut crate::monitor::SilentMonitor).unwrap();
        let names: Vec<&str> = ctx.findings.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["molecular_formula", "ring_count", "graph_stats"]);
        assert!(ctx.findings[0].1.as_text().is_some());
        assert!(ctx.findings[1].1.as_number().is_some());
        assert!(ctx.findings[2].1.as_table().is_some());
    }
}
