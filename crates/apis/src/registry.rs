//! The API registry: descriptors plus executable handlers.

use crate::chain::ApiCall;
use crate::descriptor::{ApiCategory, ApiDescriptor};
use crate::executor::ExecContext;
use crate::value::Value;
use std::collections::BTreeMap;

/// Signature of an API implementation. Receives the execution context, the
/// resolved input value, and the call (for parameters); returns the output
/// value or an error message.
pub type Handler =
    Box<dyn Fn(&mut ExecContext, Value, &ApiCall) -> Result<Value, String> + Send + Sync>;

struct ApiEntry {
    descriptor: ApiDescriptor,
    handler: Handler,
}

/// A named collection of APIs. `BTreeMap` keeps enumeration order stable,
/// which in turn keeps the LLM vocabulary and retrieval corpus stable.
#[derive(Default)]
pub struct ApiRegistry {
    entries: BTreeMap<String, ApiEntry>,
}

impl std::fmt::Debug for ApiRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApiRegistry")
            .field("apis", &self.names())
            .finish()
    }
}

impl ApiRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ApiRegistry::default()
    }

    /// Registers an API. Panics on duplicate names — duplicates are always a
    /// programming error in catalogue assembly.
    pub fn register(&mut self, descriptor: ApiDescriptor, handler: Handler) {
        let name = descriptor.name.clone();
        let prev = self.entries.insert(
            name.clone(),
            ApiEntry {
                descriptor,
                handler,
            },
        );
        assert!(prev.is_none(), "duplicate API registration: {name}");
    }

    /// Number of registered APIs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no APIs are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// The descriptor of `name`, if registered.
    pub fn descriptor(&self, name: &str) -> Option<&ApiDescriptor> {
        self.entries.get(name).map(|e| &e.descriptor)
    }

    /// All descriptors in name order.
    pub fn descriptors(&self) -> Vec<&ApiDescriptor> {
        self.entries.values().map(|e| &e.descriptor).collect()
    }

    /// All names in order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(|s| s.as_str()).collect()
    }

    /// Descriptors in one category.
    pub fn by_category(&self, category: ApiCategory) -> Vec<&ApiDescriptor> {
        self.descriptors()
            .into_iter()
            .filter(|d| d.category == category)
            .collect()
    }

    /// Invokes an API handler.
    pub fn call(
        &self,
        name: &str,
        ctx: &mut ExecContext,
        input: Value,
        call: &ApiCall,
    ) -> Result<Value, String> {
        let entry = self
            .entries
            .get(name)
            .ok_or_else(|| format!("unknown API '{name}'"))?;
        (entry.handler)(ctx, input, call)
    }
}

/// Builds the standard ChatGraph API catalogue (all categories).
pub fn standard() -> ApiRegistry {
    let mut reg = ApiRegistry::new();
    crate::impls::register_all(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ValueType;

    #[test]
    fn standard_registry_is_substantial() {
        let reg = standard();
        assert!(reg.len() >= 35, "only {} APIs registered", reg.len());
        assert!(reg.contains("detect_communities"));
        assert!(reg.contains("predict_toxicity"));
        assert!(reg.contains("similarity_search"));
        assert!(reg.contains("detect_incorrect_edges"));
        assert!(reg.contains("remove_edges"));
        assert!(reg.contains("generate_report"));
    }

    #[test]
    fn every_category_is_populated() {
        let reg = standard();
        for &cat in ApiCategory::all() {
            assert!(
                !reg.by_category(cat).is_empty(),
                "category {cat:?} has no APIs"
            );
        }
    }

    #[test]
    fn names_are_sorted_and_unique() {
        let reg = standard();
        let names = reg.names();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(names, sorted);
    }

    #[test]
    fn edit_apis_require_confirmation() {
        let reg = standard();
        assert!(reg.descriptor("remove_edges").unwrap().requires_confirmation);
        assert!(reg.descriptor("add_edges").unwrap().requires_confirmation);
        assert!(!reg.descriptor("node_count").unwrap().requires_confirmation);
    }

    #[test]
    #[should_panic(expected = "duplicate API registration")]
    fn duplicate_registration_panics() {
        let mut reg = ApiRegistry::new();
        let d = ApiDescriptor::new("x", "d", ApiCategory::Structure, ValueType::Unit, ValueType::Unit);
        reg.register(d.clone(), Box::new(|_, _, _| Ok(Value::Unit)));
        reg.register(d, Box::new(|_, _, _| Ok(Value::Unit)));
    }

    #[test]
    fn descriptions_are_nonempty_for_retrieval() {
        let reg = standard();
        for d in reg.descriptors() {
            assert!(
                d.description.split_whitespace().count() >= 4,
                "API '{}' needs a fuller description for retrieval",
                d.name
            );
        }
    }
}
