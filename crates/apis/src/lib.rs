//! # chatgraph-apis
//!
//! The graph-analysis **API layer** of ChatGraph. The paper's framework does
//! not answer questions itself — it generates a *chain of graph analysis
//! APIs* and executes it. This crate provides:
//!
//! * [`value`] — the typed values APIs exchange ([`Value`]/[`ValueType`]),
//!   so chains can be validated before execution.
//! * [`descriptor`] — API metadata: name, the natural-language description
//!   the retrieval module embeds, category, and input/output types.
//! * [`registry`] — the [`ApiRegistry`] mapping names to descriptors and
//!   executable handlers; [`registry::standard`] registers the full catalogue
//!   of ~40 APIs across the paper's categories (structure, social, molecule,
//!   similarity search, knowledge inference, graph edit, report).
//! * [`chain`] — [`ApiChain`]: the sequence the LLM generates, with type
//!   checking and a lossless encoding as a labelled graph (the form the
//!   node matching-based loss consumes).
//! * [`executor`] — runs a chain against an [`ExecContext`] (user graph +
//!   molecule database + reference graph), collecting per-step findings.
//! * [`monitor`] — the chain-monitoring surface of demo scenario 4: step
//!   events, progress, and user-confirmation hooks used by the cleaning
//!   scenario.
//! * [`impls`] — the concrete API implementations.
//! * [`analysis`] — lowering into the `chatgraph-analyzer` IR: multi-pass
//!   chain diagnostics ([`analyze`]) and the decoder's type-flow pruning
//!   predicate ([`can_extend`]).
//! * [`plan`] — the execution-plan IR: a validated chain lowered to a DAG
//!   of [`PlanStep`]s whose edges are real data dependencies (prev-output,
//!   session graph, barriers).
//! * [`cost`] — the statistics-driven cost model: per-step work estimates
//!   from a per-epoch `StatsCatalog`, driving sub-chain dispatch order and
//!   the sequential-vs-parallel kernel decision.
//! * [`sched`] — the plan [`Scheduler`]: a scoped-thread worker pool over
//!   `Arc` graph snapshots with a bounded step-memo cache, deterministic
//!   w.r.t. the sequential executor.
//! * [`supervisor`] — fault-tolerant step execution: per-step deadlines via
//!   cooperative cancellation, bounded deterministic retries, panic
//!   isolation, and a seeded fault-injection harness ([`FaultPlan`]).

pub mod analysis;
pub mod chain;
pub mod cost;
pub mod descriptor;
pub mod executor;
pub mod impls;
pub mod monitor;
pub mod plan;
pub mod registry;
pub mod sched;
pub mod supervisor;
pub mod value;

pub use analysis::{analyze, can_extend};
pub use chain::{ApiCall, ApiChain, ChainError};
pub use cost::{CostModel, PAR_KERNEL_MIN_WORK};
pub use descriptor::{ApiCategory, ApiDescriptor};
pub use executor::{execute_chain, execute_chain_reference, ExecContext};
pub use monitor::{ChainEvent, CollectingMonitor, Monitor, SilentMonitor};
pub use plan::{InputSource, Plan, PlanStep, Segment};
pub use executor::KernelState;
pub use registry::ApiRegistry;
pub use sched::{Claim, CommitAck, CommitSink, ExecProfile, FlightLease, MemoStats, Scheduler, StepMemo};
pub use supervisor::{FailurePolicy, FaultPlan, SupervisorConfig};
pub use value::{Report, Table, Value, ValueType};
