//! Fault-tolerant step execution: deadlines, bounded retries, panic
//! isolation, and a deterministic fault-injection harness.
//!
//! The scheduler delegates every step attempt to [`run_step`], which wraps
//! the handler invocation in the supervisor's failure state machine:
//!
//! ```text
//!            ┌──────────── transient failure & retries left ────────────┐
//!            ▼                                                          │
//!   run ──▶ attempt (deadline token armed, catch_unwind) ──▶ failure ───┤
//!            │                                                          │
//!            └─▶ Ok(value) ─▶ done                 retries exhausted ───┴─▶
//!                                       degrade (SkipDegraded, dead output)
//!                                       or abort  (Abort / load-bearing)
//! ```
//!
//! * **Deadlines** — each attempt gets a fresh [`CancelToken`] armed with
//!   `step_deadline_ms`. The token is threaded into the kernel policy, so
//!   CSR kernels observe it at chunk boundaries; whatever a late attempt
//!   returns after the token fires is discarded and the attempt is
//!   classified [`StepFailure::TimedOut`].
//! * **Panic isolation** — `catch_unwind` at the attempt boundary (the only
//!   place in the workspace, enforced by repolint CG106) converts panic
//!   payloads into [`StepFailure::Panicked`] instead of unwinding through
//!   the worker pool.
//! * **Retries** — only failures of *transient origin* (timeouts and
//!   injected faults) are retried, and only for APIs whose descriptor is
//!   marked `transient_retryable` (pure analytics; mutating and
//!   confirmation-gated APIs never are). Deterministic handler errors are
//!   not retried — re-running a pure function on the same snapshot cannot
//!   succeed, and retrying nothing keeps fault-free runs bit-identical to
//!   the reference executor. Backoff is deterministic: exponential in the
//!   attempt with seeded jitter keyed on `(seed, step, attempt)`.
//! * **Fault injection** — a [`FaultPlan`] decides, per `(step, attempt)`
//!   and entirely from its seed, whether an attempt fails with an injected
//!   error, an injected panic, or an injected stall. The decision is made
//!   *before* the memo cache is consulted, so warm-memo runs see exactly
//!   the faults cold runs saw.

use crate::chain::ChainError;
use crate::value::Value;
use chatgraph_support::cancel::CancelToken;
use chatgraph_support::hash::Fnv64;
use chatgraph_support::rng::{RngExt, SeedableRng, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// What the chain should do when a step exhausts its attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Stop the chain at the failing step (the classic executor contract).
    #[default]
    Abort,
    /// Steps whose output is provably dead downstream (no later step
    /// consumes it; see `Plan::dead_output`) fail soft: their finding is
    /// recorded as degraded and the rest of the chain completes.
    /// Load-bearing steps still abort.
    SkipDegraded,
}

chatgraph_support::impl_json_enum_unit!(FailurePolicy { Abort, SkipDegraded });

impl FailurePolicy {
    /// Parses the config/REPL spelling (`abort` / `skip_degraded`).
    pub fn parse(s: &str) -> Option<FailurePolicy> {
        match s {
            "abort" | "Abort" => Some(FailurePolicy::Abort),
            "skip_degraded" | "SkipDegraded" | "skip" => Some(FailurePolicy::SkipDegraded),
            _ => None,
        }
    }
}

/// Deterministic fault injection: which `(step, attempt)` sites fail, and
/// how, is a pure function of this plan — independent of worker count,
/// memo warmth, and wall clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-step fault draw.
    pub seed: u64,
    /// Probability a step is afflicted with an injected handler error.
    pub error_rate: f64,
    /// Probability a step is afflicted with an injected panic.
    pub panic_rate: f64,
    /// Probability a step is afflicted with an injected stall of
    /// `delay_ms` (combined with a deadline this forces a timeout).
    pub delay_rate: f64,
    /// Stall length for delay-afflicted attempts, in milliseconds.
    pub delay_ms: u64,
    /// Afflicted steps fail this many attempts, then run clean — so a
    /// retry budget `>= faults_per_step` recovers them. `usize::MAX`
    /// makes affliction permanent.
    pub faults_per_step: usize,
}

chatgraph_support::impl_json_struct!(FaultPlan {
    seed,
    error_rate,
    panic_rate,
    delay_rate,
    delay_ms,
    faults_per_step,
});

/// The kind of fault an afflicted attempt suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The attempt fails with an injected handler error (no handler runs).
    Error,
    /// The attempt panics (inside the supervisor's `catch_unwind`).
    Panic,
    /// The attempt stalls for [`FaultPlan::delay_ms`] before running.
    Delay,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; set rates to arm it.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            error_rate: 0.0,
            panic_rate: 0.0,
            delay_rate: 0.0,
            delay_ms: 20,
            faults_per_step: usize::MAX,
        }
    }

    /// Same plan with an error affliction probability.
    pub fn with_error_rate(mut self, rate: f64) -> FaultPlan {
        self.error_rate = rate;
        self
    }

    /// Same plan with a panic affliction probability.
    pub fn with_panic_rate(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate;
        self
    }

    /// Same plan with a stall affliction probability and stall length.
    pub fn with_delay(mut self, rate: f64, delay_ms: u64) -> FaultPlan {
        self.delay_rate = rate;
        self.delay_ms = delay_ms;
        self
    }

    /// Same plan where afflicted steps recover after `n` failed attempts.
    pub fn with_faults_per_step(mut self, n: usize) -> FaultPlan {
        self.faults_per_step = n;
        self
    }

    /// The fault injected at `(step, attempt)`, if any. The kind is drawn
    /// once per *step* (so retries keep hitting the same kind) and attempts
    /// past `faults_per_step` run clean.
    pub fn fault_for(&self, step: usize, attempt: usize) -> Option<InjectedFault> {
        if attempt >= self.faults_per_step {
            return None;
        }
        let mut h = Fnv64::new();
        h.write_str("fault");
        h.write_u64(self.seed);
        h.write_u64(step as u64);
        let mut rng = StdRng::seed_from_u64(h.finish());
        let x: f64 = rng.random();
        if x < self.error_rate {
            Some(InjectedFault::Error)
        } else if x < self.error_rate + self.panic_rate {
            Some(InjectedFault::Panic)
        } else if x < self.error_rate + self.panic_rate + self.delay_rate {
            Some(InjectedFault::Delay)
        } else {
            None
        }
    }

    /// Step indices in `0..len` afflicted on their first attempt — the set
    /// the differential tests compare degraded results against.
    pub fn afflicted(&self, len: usize) -> Vec<usize> {
        (0..len).filter(|&i| self.fault_for(i, 0).is_some()).collect()
    }
}

/// Supervisor knobs (`exec.*` in `ChatGraphConfig`).
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Per-step deadline in milliseconds; `0` disables deadlines.
    pub step_deadline_ms: u64,
    /// Retries (beyond the first attempt) for transient failures of
    /// retryable steps.
    pub max_retries: usize,
    /// What to do when a step exhausts its attempts.
    pub failure_policy: FailurePolicy,
    /// Base backoff in milliseconds; attempt `a` waits
    /// `base·2^a + jitter(seed, step, a)`, capped at [`MAX_BACKOFF_MS`].
    pub backoff_base_ms: u64,
    /// Deterministic fault injection, test/REPL only. `None` in production.
    pub faults: Option<FaultPlan>,
}

/// Upper bound on one backoff sleep, keeping retry storms (and tests) fast.
pub const MAX_BACKOFF_MS: u64 = 50;

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            step_deadline_ms: 0,
            max_retries: 2,
            failure_policy: FailurePolicy::Abort,
            backoff_base_ms: 1,
            faults: None,
        }
    }
}

impl SupervisorConfig {
    /// Whether this config can alter fault-free execution at all (used by
    /// the scheduler to skip supervisor bookkeeping entirely when passive).
    pub fn is_armed(&self) -> bool {
        self.step_deadline_ms > 0 || self.faults.is_some()
    }
}

/// How one step ultimately failed, after all attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFailure {
    /// The handler (or an injected fault) returned an error.
    Error(String),
    /// The attempt panicked; the payload was caught at the supervisor
    /// boundary.
    Panicked(String),
    /// The attempt outlived its deadline (milliseconds).
    TimedOut(u64),
}

impl StepFailure {
    /// One-line rendering for events and findings.
    pub fn render(&self) -> String {
        match self {
            StepFailure::Error(msg) => msg.clone(),
            StepFailure::Panicked(msg) => format!("panicked: {msg}"),
            StepFailure::TimedOut(ms) => format!("exceeded the {ms}ms step deadline"),
        }
    }

    /// The chain error this failure aborts with at step `step`.
    pub fn into_chain_error(self, step: usize) -> ChainError {
        match self {
            StepFailure::Error(msg) => ChainError::ExecutionFailed(step, msg),
            StepFailure::Panicked(msg) => ChainError::StepPanicked(step, msg),
            StepFailure::TimedOut(ms) => ChainError::StepTimedOut(step, ms),
        }
    }
}

/// One retry the supervisor performed, reported as a `StepRetried` event
/// when the step's effects are committed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryNote {
    /// 1-based retry number (the attempt it precedes).
    pub attempt: usize,
    /// Backoff slept before this retry, in milliseconds.
    pub backoff_ms: u64,
    /// The transient failure that triggered the retry.
    pub error: String,
}

/// The supervised result of one step: the final outcome plus every retry
/// performed on the way.
#[derive(Debug)]
pub struct Attempted {
    /// `Ok` with the step's value, or the last attempt's failure.
    pub result: Result<Value, StepFailure>,
    /// Retries performed, in order.
    pub retries: Vec<RetryNote>,
}

/// The deterministic backoff before retry `attempt` (0-based count of
/// completed attempts): `base·2^attempt + jitter`, jitter seeded from
/// `(seed, step, attempt)`, capped at [`MAX_BACKOFF_MS`].
pub fn backoff_ms(cfg: &SupervisorConfig, seed: u64, step: usize, attempt: usize) -> u64 {
    let base = cfg.backoff_base_ms;
    if base == 0 {
        return 0;
    }
    let mut h = Fnv64::new();
    h.write_str("backoff");
    h.write_u64(seed);
    h.write_u64(step as u64);
    h.write_u64(attempt as u64);
    let mut rng = StdRng::seed_from_u64(h.finish());
    let jitter = rng.random_range(0..=base);
    (base << attempt.min(6)).saturating_add(jitter).min(MAX_BACKOFF_MS)
}

/// Renders a caught panic payload (the `&str` / `String` payloads `panic!`
/// produces; anything else gets a fixed description).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one step under supervision. `attempt_fn` performs a single attempt
/// against the token and kernel chunk-delay it is handed (the scheduler
/// threads both into the kernel policy, so delay faults stall CSR kernels
/// *at chunk boundaries*, where cancellation is observable); it is invoked
/// once per attempt. `retryable` comes from the API descriptor's
/// `transient_retryable` flag.
pub fn run_step<F>(
    cfg: &SupervisorConfig,
    seed: u64,
    step: usize,
    retryable: bool,
    mut attempt_fn: F,
) -> Attempted
where
    F: FnMut(&CancelToken, Duration) -> Result<Value, String>,
{
    let mut retries = Vec::new();
    let max_attempts = if retryable { cfg.max_retries + 1 } else { 1 };
    let mut attempt = 0usize;
    loop {
        let fault = cfg.faults.as_ref().and_then(|f| f.fault_for(step, attempt));
        // `(failure, transient)`: only transient-origin failures retry.
        let (failure, transient) = if let Some(InjectedFault::Error) = fault {
            // The handler never runs — in particular the memo cache is not
            // consulted, so fault decisions are identical under warm memo.
            (
                StepFailure::Error(format!("injected fault (step {step}, attempt {attempt})")),
                true,
            )
        } else {
            let token = CancelToken::with_deadline(Duration::from_millis(cfg.step_deadline_ms));
            let delay = match fault {
                Some(InjectedFault::Delay) => {
                    cfg.faults.as_ref().map(|f| f.delay_ms).unwrap_or(0)
                }
                _ => 0,
            };
            // The ONLY catch_unwind in the workspace (repolint CG106):
            // panic payloads become StepFailure::Panicked here instead of
            // unwinding into the worker pool.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if let Some(InjectedFault::Panic) = fault {
                    panic!("injected panic (step {step}, attempt {attempt})");
                }
                if delay > 0 {
                    // Stall once at the step site, and hand the delay to the
                    // attempt as a kernel chunk-delay so long kernels stall
                    // at every chunk boundary too.
                    std::thread::sleep(Duration::from_millis(delay));
                }
                attempt_fn(&token, Duration::from_millis(delay))
            }));
            match caught {
                Err(payload) => {
                    let injected = matches!(fault, Some(InjectedFault::Panic));
                    (StepFailure::Panicked(panic_message(payload)), injected)
                }
                // A fired deadline wins over whatever the attempt returned:
                // cancelled kernels return neutral values, so a "result"
                // computed after cancellation must never be observed.
                Ok(_) if token.is_cancelled() => {
                    (StepFailure::TimedOut(cfg.step_deadline_ms), true)
                }
                Ok(Err(msg)) => (StepFailure::Error(msg), false),
                Ok(Ok(value)) => return Attempted { result: Ok(value), retries },
            }
        };
        attempt += 1;
        if transient && attempt < max_attempts {
            let wait = backoff_ms(cfg, seed, step, attempt - 1);
            retries.push(RetryNote {
                attempt,
                backoff_ms: wait,
                error: failure.render(),
            });
            if wait > 0 {
                std::thread::sleep(Duration::from_millis(wait));
            }
            continue;
        }
        return Attempted { result: Err(failure), retries };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet<T>(f: impl FnOnce() -> T + std::panic::UnwindSafe) -> T {
        // Silence the default panic hook while injected panics fly; restore
        // it afterwards so genuine test failures still print.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = catch_unwind(f);
        std::panic::set_hook(hook);
        match out {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    #[test]
    fn fault_draw_is_deterministic_and_attempt_gated() {
        let plan = FaultPlan::new(9).with_error_rate(0.5).with_faults_per_step(2);
        for step in 0..64 {
            let first = plan.fault_for(step, 0);
            assert_eq!(first, plan.fault_for(step, 0), "same draw twice");
            assert_eq!(first, plan.fault_for(step, 1), "kind is per-step");
            assert_eq!(plan.fault_for(step, 2), None, "recovers after budget");
        }
        let hit = plan.afflicted(64).len();
        assert!(hit > 10 && hit < 54, "rate 0.5 afflicts roughly half, got {hit}");
    }

    #[test]
    fn clean_config_returns_first_attempt() {
        let cfg = SupervisorConfig::default();
        let mut calls = 0;
        let out = run_step(&cfg, 1, 0, true, |_, _| {
            calls += 1;
            Ok(Value::Number(7.0))
        });
        assert_eq!(out.result, Ok(Value::Number(7.0)));
        assert!(out.retries.is_empty());
        assert_eq!(calls, 1);
        assert!(!cfg.is_armed());
    }

    #[test]
    fn deterministic_handler_errors_are_not_retried() {
        let cfg = SupervisorConfig { max_retries: 5, ..Default::default() };
        let mut calls = 0;
        let out = run_step(&cfg, 1, 0, true, |_, _| {
            calls += 1;
            Err("no such node".to_owned())
        });
        assert_eq!(out.result, Err(StepFailure::Error("no such node".to_owned())));
        assert_eq!(calls, 1, "pure failures cannot succeed on retry");
        assert!(out.retries.is_empty());
    }

    #[test]
    fn injected_errors_retry_until_budget_then_succeed() {
        // Afflict every step with errors for 2 attempts; 2 retries recover.
        let plan = FaultPlan::new(3).with_error_rate(1.0).with_faults_per_step(2);
        let cfg = SupervisorConfig {
            max_retries: 2,
            faults: Some(plan),
            ..Default::default()
        };
        let mut calls = 0;
        let out = run_step(&cfg, 11, 4, true, |_, _| {
            calls += 1;
            Ok(Value::Bool(true))
        });
        assert_eq!(out.result, Ok(Value::Bool(true)));
        assert_eq!(calls, 1, "handler runs only on the clean third attempt");
        assert_eq!(out.retries.len(), 2);
        // Backoff is reproducible: the notes match the pure function.
        for (i, note) in out.retries.iter().enumerate() {
            assert_eq!(note.attempt, i + 1);
            assert_eq!(note.backoff_ms, backoff_ms(&cfg, 11, 4, i));
        }
    }

    #[test]
    fn injected_errors_exhaust_retries_on_unretryable_steps() {
        let plan = FaultPlan::new(3).with_error_rate(1.0);
        let cfg = SupervisorConfig { max_retries: 3, faults: Some(plan), ..Default::default() };
        let out = run_step(&cfg, 1, 0, false, |_, _| Ok(Value::Unit));
        assert!(matches!(out.result, Err(StepFailure::Error(_))));
        assert!(out.retries.is_empty(), "unretryable steps get one attempt");
    }

    #[test]
    fn injected_panics_are_caught_and_classified() {
        let plan = FaultPlan::new(5).with_panic_rate(1.0);
        let cfg = SupervisorConfig { max_retries: 1, faults: Some(plan), ..Default::default() };
        let out = quiet(|| run_step(&cfg, 1, 2, true, |_, _| Ok(Value::Unit)));
        match out.result {
            Err(StepFailure::Panicked(msg)) => {
                assert!(msg.contains("injected panic (step 2"), "got: {msg}");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        assert_eq!(out.retries.len(), 1, "injected panics are transient");
    }

    #[test]
    fn real_panics_are_caught_but_not_retried() {
        let cfg = SupervisorConfig { max_retries: 5, ..Default::default() };
        let out = quiet(|| {
            run_step(&cfg, 1, 3, true, |_, _| -> Result<Value, String> {
                panic!("index out of bounds: 99")
            })
        });
        assert_eq!(
            out.result,
            Err(StepFailure::Panicked("index out of bounds: 99".to_owned()))
        );
        assert!(out.retries.is_empty(), "genuine panics are deterministic bugs");
    }

    #[test]
    fn deadline_discards_late_results_and_retries() {
        let cfg = SupervisorConfig { step_deadline_ms: 4, max_retries: 2, ..Default::default() };
        assert!(cfg.is_armed());
        let mut calls = 0;
        let out = run_step(&cfg, 1, 0, true, |_, _| {
            calls += 1;
            std::thread::sleep(Duration::from_millis(12));
            Ok(Value::Number(1.0))
        });
        assert_eq!(out.result, Err(StepFailure::TimedOut(4)));
        assert_eq!(calls, 3, "timeouts are transient: 1 attempt + 2 retries");
        assert_eq!(out.retries.len(), 2);
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_grows() {
        let cfg = SupervisorConfig::default();
        for step in 0..8 {
            for a in 0..8 {
                let b = backoff_ms(&cfg, 42, step, a);
                assert_eq!(b, backoff_ms(&cfg, 42, step, a));
                assert!(b <= MAX_BACKOFF_MS);
            }
        }
        let zero = SupervisorConfig { backoff_base_ms: 0, ..Default::default() };
        assert_eq!(backoff_ms(&zero, 42, 0, 3), 0);
    }

    #[test]
    fn failure_policy_parses_and_roundtrips_json() {
        assert_eq!(FailurePolicy::parse("abort"), Some(FailurePolicy::Abort));
        assert_eq!(FailurePolicy::parse("skip_degraded"), Some(FailurePolicy::SkipDegraded));
        assert_eq!(FailurePolicy::parse("??"), None);
        let s = chatgraph_support::json::to_string(&FailurePolicy::SkipDegraded);
        assert_eq!(
            chatgraph_support::json::from_str::<FailurePolicy>(&s).unwrap(),
            FailurePolicy::SkipDegraded
        );
    }

    #[test]
    fn step_failures_render_and_convert() {
        assert_eq!(
            StepFailure::Error("x".into()).into_chain_error(3),
            ChainError::ExecutionFailed(3, "x".into())
        );
        assert_eq!(
            StepFailure::Panicked("boom".into()).into_chain_error(1),
            ChainError::StepPanicked(1, "boom".into())
        );
        assert_eq!(
            StepFailure::TimedOut(250).into_chain_error(0),
            ChainError::StepTimedOut(0, 250)
        );
        assert!(StepFailure::TimedOut(250).render().contains("250ms"));
    }
}
