//! The planner's statistics-driven cost model.
//!
//! [`CostModel`] turns a [`StatsCatalog`] — one O(n + m) pass of per-label
//! counts and degree moments maintained per mutation epoch — into per-step
//! work estimates, without ever touching the graph itself. The estimates
//! drive two scheduling decisions in [`crate::plan::Plan::build_with_stats`]:
//!
//! * **ordering**: within a barrier-free segment, independent sub-chains are
//!   dispatched most-expensive-first, so a long analysis never starts last
//!   and dominates the segment's tail (classic LPT heuristic);
//! * **kernel parallelism**: steps whose estimated work is below
//!   [`PAR_KERNEL_MIN_WORK`] run their CSR kernels sequentially — for small
//!   inputs the scoped-thread fan-out costs more than the kernel itself.
//!
//! Estimates are in abstract *work units* (≈ memory touches), not time:
//! only their relative order and the parallelism threshold matter, and both
//! are deterministic functions of the catalog, so plans stay reproducible.
//!
//! The model classifies APIs by name with a category fallback, so an API
//! added to the registry without a cost entry degrades to a sane default
//! instead of breaking planning.

use crate::descriptor::{ApiCategory, ApiDescriptor};
use chatgraph_graph::stats::StatsCatalog;

/// Estimated work units below which a step's CSR kernels run sequentially:
/// at ~1 work unit per memory touch, 2^20 touches finish in a few
/// milliseconds — under that, spawning and joining a scoped worker pool
/// (plus the cache cooling it causes) typically costs more than it saves.
/// A single linear sweep crosses the bar only past ~10^6-node graphs;
/// iterated and super-linear kernels cross it around 10^5.
pub const PAR_KERNEL_MIN_WORK: u64 = 1 << 20;

/// Iteration count folded into iterative-kernel estimates (pagerank and
/// friends run a fixed default iteration budget).
const ITERATIVE_ROUNDS: u64 = 20;

/// Per-step work estimation over one epoch's [`StatsCatalog`].
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    nodes: u64,
    edges: u64,
    /// Σ deg² — the pair-enumeration work of triangle-style kernels.
    degree_sum_sq: u64,
}

impl CostModel {
    /// A model over `catalog`'s epoch.
    pub fn new(catalog: &StatsCatalog) -> CostModel {
        CostModel {
            nodes: catalog.nodes as u64,
            edges: catalog.edges as u64,
            degree_sum_sq: catalog.degree_sum_sq,
        }
    }

    /// A model for an empty graph (used when no catalog is available; every
    /// estimate is the floor).
    pub fn empty() -> CostModel {
        CostModel { nodes: 0, edges: 0, degree_sum_sq: 0 }
    }

    /// One linear sweep over the graph.
    fn linear(&self) -> u64 {
        self.nodes + self.edges
    }

    /// Estimated work units for one call of `desc`.
    ///
    /// Classes, cheapest to dearest: constant-ish bookkeeping; one linear
    /// sweep; a fixed number of iterated sweeps (pagerank-style); degree
    /// pair enumeration (`Σ deg²`, triangle-style); and per-source
    /// traversals (`n · (n + m)`, distance-style). Saturating arithmetic —
    /// a 10^6-node diameter estimate must not wrap.
    pub fn estimate(&self, desc: &ApiDescriptor) -> u64 {
        let linear = self.linear();
        let named = match desc.name.as_str() {
            // Bookkeeping over findings or parameters, not the graph.
            "list_findings" | "summarize_result" | "generate_report" => Some(64),
            // Edits touch the edges named in the input, bounded by m.
            "remove_edges" | "add_edges" | "relabel_nodes" | "export_graph" => {
                Some(linear.max(64))
            }
            // Iterated linear sweeps.
            "top_pagerank" | "find_influencers" | "detect_communities"
            | "modularity_score" | "predict_solubility" => {
                Some(linear.saturating_mul(ITERATIVE_ROUNDS))
            }
            // Degree pair enumeration.
            "triangle_count" | "clustering_coefficient" | "count_pattern_matches" => {
                Some(self.degree_sum_sq.max(linear))
            }
            // Per-source traversals.
            "graph_diameter" | "average_path_length" | "top_betweenness"
            | "top_closeness" | "connectivity_report" => {
                Some(self.nodes.saturating_mul(linear).max(linear))
            }
            _ => None,
        };
        let est = named.unwrap_or(match desc.category {
            // Structure/social/molecule/knowledge analyses default to one
            // linear sweep; similarity rescans the database per entry, which
            // the session catalog cannot see — assume a sizeable constant
            // factor so it never looks free.
            ApiCategory::Similarity => linear.saturating_mul(64),
            ApiCategory::Report => 64,
            _ => linear,
        });
        est.max(1)
    }

    /// Whether `desc`'s estimated work clears the bar where fanning its CSR
    /// kernels out across the worker pool pays for the pool.
    pub fn par_kernel(&self, desc: &ApiDescriptor) -> bool {
        self.estimate(desc) >= PAR_KERNEL_MIN_WORK
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use chatgraph_graph::generators::{social_network, SocialParams};

    fn model(n: usize) -> CostModel {
        let g = social_network(&SocialParams::sized(n), 5);
        CostModel::new(&StatsCatalog::build(&g))
    }

    #[test]
    fn estimates_order_by_algorithmic_class() {
        let reg = registry::standard();
        let m = model(5_000);
        let est = |name: &str| m.estimate(reg.descriptor(name).unwrap());
        assert!(est("node_count") < est("top_pagerank"));
        assert!(est("top_pagerank") < est("graph_diameter"));
        assert!(est("generate_report") <= 64);
        // Triangle work tracks Σ deg², which dominates a linear sweep here.
        assert!(est("triangle_count") >= est("edge_count"));
    }

    #[test]
    fn par_kernel_flips_with_graph_scale() {
        let reg = registry::standard();
        let pagerank = reg.descriptor("top_pagerank").unwrap();
        let count = reg.descriptor("node_count").unwrap();
        let small = model(120);
        assert!(!small.par_kernel(pagerank), "120 nodes never pays for a pool");
        let large = model(100_000);
        assert!(large.par_kernel(pagerank), "10^5-node pagerank clears the bar");
        assert!(!large.par_kernel(count), "a single sweep stays sequential");
    }

    #[test]
    fn empty_model_estimates_are_floored() {
        let reg = registry::standard();
        let m = CostModel::empty();
        for d in reg.descriptors() {
            assert!(m.estimate(d) >= 1, "{} estimated zero work", d.name);
            assert!(!m.par_kernel(d));
        }
    }
}
