//! The execution-plan IR: a validated [`ApiChain`] lowered into a DAG of
//! [`PlanStep`]s whose edges are the *real* data dependencies.
//!
//! The chain the LLM emits is linear, but most of its steps only read an
//! immutable snapshot of the session graph — there is no data reason to run
//! them one after another. [`Plan::build`] makes the true structure
//! explicit:
//!
//! * every step's input is resolved statically ([`InputSource`]): the
//!   previous step's output, the session graph, or `Unit` — mirroring the
//!   executor's runtime rule exactly (declared output types are exact in
//!   this catalogue, so static resolution equals runtime resolution);
//! * steps that mutate the session graph, require user confirmation, or
//!   read accumulated findings are **barriers**: they observe or change
//!   shared state, so everything before them must have committed and
//!   nothing after them may start early;
//! * between barriers, steps form independent sub-chains (linked only by
//!   consecutive `PrevOutput` edges) that a scheduler may run in parallel;
//! * pure, confirmation-free steps are flagged `memoizable` for the
//!   scheduler's step-result cache.
//!
//! The plan is a *description*; execution lives in [`crate::sched`]. The
//! determinism contract — N-worker execution produces the same final value,
//! findings order and core events as the sequential executor — is stated
//! there and enforced by `tests/plan_properties.rs`.

use crate::chain::{ApiChain, ChainError};
use crate::cost::CostModel;
use crate::descriptor::ApiCategory;
use crate::registry::ApiRegistry;
use crate::value::ValueType;
use chatgraph_graph::stats::StatsCatalog;
use chatgraph_support::json::{FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// Where a step's input value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSource {
    /// The output of step `i` (always the immediately preceding step, by
    /// the executor's resolution rule).
    PrevOutput(usize),
    /// A read-only snapshot of the session graph.
    SessionGraph,
    /// No input.
    Unit,
}

impl ToJson for InputSource {
    fn to_json(&self) -> Json {
        match self {
            InputSource::PrevOutput(i) => {
                Json::Object(vec![("PrevOutput".to_owned(), Json::UInt(*i as u64))])
            }
            InputSource::SessionGraph => Json::Str("SessionGraph".to_owned()),
            InputSource::Unit => Json::Str("Unit".to_owned()),
        }
    }
}

impl FromJson for InputSource {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("SessionGraph") => return Ok(InputSource::SessionGraph),
            Some("Unit") => return Ok(InputSource::Unit),
            _ => {}
        }
        let fields = v
            .as_object()
            .ok_or_else(|| JsonError::expected("InputSource", v))?;
        match fields {
            [(tag, payload)] if tag == "PrevOutput" => {
                Ok(InputSource::PrevOutput(FromJson::from_json(payload)?))
            }
            _ => Err(JsonError::msg("unknown InputSource variant")),
        }
    }
}

/// One node of the plan DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// Position in the original chain (and the findings/event order).
    pub index: usize,
    /// API name.
    pub api: String,
    /// Call parameters.
    pub params: BTreeMap<String, String>,
    /// Statically resolved input.
    pub input: InputSource,
    /// Indices of steps that must commit before this one may run. Sorted.
    pub deps: Vec<usize>,
    /// Whether this step is a barrier (mutation, confirmation, or a read of
    /// accumulated findings): it runs alone, after everything before it.
    pub barrier: bool,
    /// Whether the step observes the session graph.
    pub reads_graph: bool,
    /// Whether the step mutates the session graph.
    pub mutates_graph: bool,
    /// Whether the step reads `ExecContext::findings`.
    pub reads_findings: bool,
    /// Whether the scheduler may serve this step from its memo cache.
    pub memoizable: bool,
    /// Estimated work units from the cost model (0 when the plan was built
    /// without statistics). Orders sub-chain dispatch within a segment.
    pub est_cost: u64,
    /// Whether this step's CSR kernels should use the full worker pool.
    /// `true` without statistics — the historical always-parallel policy.
    pub par_kernel: bool,
}

chatgraph_support::impl_json_struct!(PlanStep {
    index,
    api,
    params,
    input,
    deps,
    barrier,
    reads_graph,
    mutates_graph,
    reads_findings,
    memoizable,
    est_cost,
    par_kernel,
});

/// A validated chain lowered to its dependency DAG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Steps in chain order (the DAG edges are in `deps`).
    pub steps: Vec<PlanStep>,
}

chatgraph_support::impl_json_struct!(Plan { steps });

impl Plan {
    /// Lowers `chain` into a plan without statistics: every step estimates
    /// zero cost and keeps kernel parallelism on — the behaviour before the
    /// cost model existed. Validates the chain first (the plan's
    /// input-resolution rule is only meaningful for chains the validator
    /// accepts, with a session graph present).
    pub fn build(chain: &ApiChain, registry: &ApiRegistry) -> Result<Plan, ChainError> {
        Plan::build_with_stats(chain, registry, None)
    }

    /// Lowers `chain` into a plan, pricing each step against `stats` when
    /// given: `est_cost` carries the cost model's work estimate (the
    /// scheduler dispatches a segment's sub-chains most-expensive-first) and
    /// `par_kernel` records whether the step's estimated work clears
    /// [`crate::cost::PAR_KERNEL_MIN_WORK`] — below it the step's CSR
    /// kernels run sequentially. The DAG itself (inputs, deps, barriers) is
    /// independent of statistics; only the two scheduling hints change.
    pub fn build_with_stats(
        chain: &ApiChain,
        registry: &ApiRegistry,
        stats: Option<&StatsCatalog>,
    ) -> Result<Plan, ChainError> {
        chain.validate(registry, true)?;
        let model = stats.map(CostModel::new);
        let mut steps: Vec<PlanStep> = Vec::with_capacity(chain.len());
        let mut last_barrier: Option<usize> = None;
        let mut prev_out = ValueType::Unit;
        for (i, call) in chain.steps.iter().enumerate() {
            let desc = registry
                .descriptor(&call.api)
                .ok_or_else(|| ChainError::UnknownApi(i, call.api.clone()))?;
            // Mirror the executor's runtime rule: previous output if the
            // types accept it, else the session graph for Graph inputs,
            // else Unit.
            let input = if desc.input.accepts(prev_out) && i > 0 {
                InputSource::PrevOutput(i - 1)
            } else if desc.input == ValueType::Graph {
                InputSource::SessionGraph
            } else {
                InputSource::Unit
            };
            // Report sinks and Any-input steps fold over `findings`, which
            // every earlier step appends to — they observe all prior state.
            let reads_findings =
                desc.category == ApiCategory::Report || desc.input == ValueType::Any;
            let barrier = desc.mutates_graph || desc.requires_confirmation || reads_findings;
            let reads_graph = input == InputSource::SessionGraph || barrier;
            let mut deps: Vec<usize> = Vec::new();
            if barrier {
                // A barrier waits for everything before it; listing the
                // previous barrier plus the steps after it is transitively
                // complete.
                match last_barrier {
                    Some(b) => deps.extend(b..i),
                    None => deps.extend(0..i),
                }
            } else {
                if let InputSource::PrevOutput(j) = input {
                    deps.push(j);
                }
                if reads_graph {
                    if let Some(b) = last_barrier {
                        if !deps.contains(&b) {
                            deps.push(b);
                        }
                    }
                }
                deps.sort_unstable();
            }
            steps.push(PlanStep {
                index: i,
                api: call.api.clone(),
                params: call.params.clone(),
                input,
                deps,
                barrier,
                reads_graph,
                mutates_graph: desc.mutates_graph,
                reads_findings,
                memoizable: !barrier,
                est_cost: model.as_ref().map_or(0, |m| m.estimate(desc)),
                par_kernel: model.as_ref().is_none_or(|m| m.par_kernel(desc)),
            });
            if barrier {
                last_barrier = Some(i);
            }
            prev_out = desc.output;
        }
        Ok(Plan { steps })
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of dependency edges.
    pub fn dep_count(&self) -> usize {
        self.steps.iter().map(|s| s.deps.len()).sum()
    }

    /// Number of barrier steps.
    pub fn barrier_count(&self) -> usize {
        self.steps.iter().filter(|s| s.barrier).count()
    }

    /// Sum of the cost model's per-step work estimates (0 when the plan was
    /// built without statistics).
    pub fn total_cost(&self) -> u64 {
        self.steps.iter().map(|s| s.est_cost).sum()
    }

    /// Number of steps whose CSR kernels run with the full worker pool.
    pub fn par_kernel_count(&self) -> usize {
        self.steps.iter().filter(|s| s.par_kernel).count()
    }

    /// Whether step `i`'s *output value* is provably dead downstream: no
    /// later step consumes it via `PrevOutput` and it is not the chain's
    /// final value. Barriers are never dead — their observable effect is
    /// the mutation/confirmation/findings-read itself, not the value.
    ///
    /// This is the soundness condition for `FailurePolicy::SkipDegraded`:
    /// a dead-output step may fail soft (its finding recorded as degraded)
    /// without changing what any later step computes. Note the degraded
    /// *finding* is still visible to report sinks — exactly the "mark it
    /// degraded, complete the chain" contract. Because `PrevOutput` edges
    /// only ever point at the immediate predecessor, dead-output steps are
    /// always sub-chain tails, so skipping them never unblocks or starves
    /// a worker's sub-chain either.
    pub fn dead_output(&self, i: usize) -> bool {
        let Some(step) = self.steps.get(i) else { return false };
        if step.barrier || i + 1 >= self.steps.len() {
            return false;
        }
        self.steps[i + 1].input != InputSource::PrevOutput(i)
    }

    /// The maximal barrier-free segments, each partitioned into its
    /// independent sub-chains (runs linked by consecutive `PrevOutput`
    /// edges). Barrier steps appear as their own single-step groups. This
    /// is the structure the scheduler executes.
    pub fn segments(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.steps.len() {
            if self.steps[i].barrier {
                out.push(Segment::Barrier(i));
                i += 1;
                continue;
            }
            let start = i;
            while i < self.steps.len() && !self.steps[i].barrier {
                i += 1;
            }
            let mut chains: Vec<Vec<usize>> = Vec::new();
            for j in start..i {
                let continues = j > start
                    && self.steps[j].input == InputSource::PrevOutput(j - 1);
                if continues {
                    if let Some(last) = chains.last_mut() {
                        last.push(j);
                        continue;
                    }
                }
                chains.push(vec![j]);
            }
            out.push(Segment::Parallel(chains));
        }
        out
    }

    /// A human-readable sketch of the DAG, one line per step.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let deps = if s.deps.is_empty() {
                "-".to_owned()
            } else {
                s.deps
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let mut flags = Vec::new();
            if s.barrier {
                flags.push("barrier");
            }
            if s.mutates_graph {
                flags.push("mutates");
            }
            if s.memoizable {
                flags.push("memo");
            }
            if !s.par_kernel {
                flags.push("seq-kernel");
            }
            let cost = if s.est_cost > 0 {
                format!(" cost={}", s.est_cost)
            } else {
                String::new()
            };
            let input = match s.input {
                InputSource::PrevOutput(j) => format!("prev({j})"),
                InputSource::SessionGraph => "graph".to_owned(),
                InputSource::Unit => "unit".to_owned(),
            };
            out.push_str(&format!(
                "#{:<2} {:<28} in={:<9} deps=[{}]{} {}\n",
                s.index,
                s.api,
                input,
                deps,
                cost,
                flags.join(" ")
            ));
        }
        out
    }
}

/// One scheduling unit: either a single barrier step or a set of
/// independent sub-chains that may run concurrently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// A barrier step, run alone on the scheduler thread.
    Barrier(usize),
    /// Independent sub-chains of step indices; each sub-chain is sequential
    /// internally, distinct sub-chains may run in parallel.
    Parallel(Vec<Vec<usize>>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ApiCall, ApiChain};
    use crate::registry;

    #[test]
    fn independent_reads_have_no_mutual_deps() {
        let reg = registry::standard();
        // Three Number-producing graph reads: each falls back to the
        // session graph, so none depends on another.
        let chain = ApiChain::from_names(["node_count", "edge_count", "graph_density"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        assert_eq!(plan.len(), 3);
        for s in &plan.steps {
            assert_eq!(s.input, InputSource::SessionGraph);
            assert!(s.deps.is_empty(), "step {} deps {:?}", s.index, s.deps);
            assert!(s.memoizable && !s.barrier);
        }
        assert_eq!(
            plan.segments(),
            vec![Segment::Parallel(vec![vec![0], vec![1], vec![2]])]
        );
    }

    #[test]
    fn dead_output_marks_unconsumed_non_final_steps() {
        let reg = registry::standard();
        // Steps 0 and 1 feed nothing (step 1 / 2 read the session graph);
        // step 2's value is the chain result.
        let chain = ApiChain::from_names(["node_count", "edge_count", "graph_density"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        assert!(plan.dead_output(0));
        assert!(plan.dead_output(1));
        assert!(!plan.dead_output(2), "the final value is always load-bearing");
        assert!(!plan.dead_output(99), "out of range is not dead");
        // A consumed output is load-bearing; a report sink is a barrier
        // (and, taking `Any`, consumes the previous output too).
        let chain = ApiChain::from_names(["largest_component", "node_count", "generate_report"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        assert!(!plan.dead_output(0), "step 1 consumes PrevOutput(0)");
        assert!(!plan.dead_output(1), "the report consumes PrevOutput(1)");
        assert!(!plan.dead_output(2), "barriers are never dead");
    }

    #[test]
    fn prev_output_links_consecutive_steps() {
        let reg = registry::standard();
        // largest_component: Graph → Graph, node_count consumes it.
        let chain = ApiChain::from_names(["largest_component", "node_count", "edge_count"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        assert_eq!(plan.steps[1].input, InputSource::PrevOutput(0));
        assert_eq!(plan.steps[1].deps, vec![0]);
        // node_count outputs Number; edge_count wants Graph → session graph.
        assert_eq!(plan.steps[2].input, InputSource::SessionGraph);
        assert!(plan.steps[2].deps.is_empty());
        assert_eq!(
            plan.segments(),
            vec![Segment::Parallel(vec![vec![0, 1], vec![2]])]
        );
    }

    #[test]
    fn edit_apis_are_mutation_barriers() {
        let reg = registry::standard();
        let chain = ApiChain::from_names([
            "node_count",
            "detect_incorrect_edges",
            "remove_edges",
            "edge_count",
        ]);
        let plan = Plan::build(&chain, &reg).unwrap();
        let remove = &plan.steps[2];
        assert!(remove.barrier && remove.mutates_graph && !remove.memoizable);
        assert_eq!(remove.deps, vec![0, 1], "waits for everything before it");
        // The read after the barrier depends on it.
        assert_eq!(plan.steps[3].deps, vec![2]);
        assert_eq!(
            plan.segments(),
            vec![
                Segment::Parallel(vec![vec![0], vec![1]]),
                Segment::Barrier(2),
                Segment::Parallel(vec![vec![3]]),
            ]
        );
    }

    #[test]
    fn report_sinks_are_findings_barriers() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "graph_stats", "generate_report"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        let report = &plan.steps[2];
        assert!(report.barrier && report.reads_findings && !report.mutates_graph);
        assert_eq!(report.deps, vec![0, 1]);
    }

    #[test]
    fn barriers_chain_through_each_other() {
        let reg = registry::standard();
        let chain = ApiChain::from_names([
            "detect_incorrect_edges",
            "remove_edges",
            "detect_missing_edges",
            "add_edges",
        ]);
        let plan = Plan::build(&chain, &reg).unwrap();
        assert_eq!(plan.steps[1].deps, vec![0]);
        // Step 2 reads the graph after the barrier at 1.
        assert_eq!(plan.steps[2].deps, vec![1]);
        assert_eq!(plan.steps[3].deps, vec![1, 2]);
        assert_eq!(plan.barrier_count(), 2);
    }

    #[test]
    fn stats_build_prices_steps_without_changing_the_dag() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "top_pagerank", "generate_report"]);
        let bare = Plan::build(&chain, &reg).unwrap();
        for s in &bare.steps {
            assert_eq!(s.est_cost, 0, "no stats, no estimate");
            assert!(s.par_kernel, "no stats keeps kernels parallel");
        }
        // A hand-written 10^5-node catalog: cheap steps drop to sequential
        // kernels, the iterative kernel clears the parallelism bar.
        let stats = StatsCatalog {
            nodes: 100_000,
            edges: 500_000,
            directed: false,
            node_labels: vec![("Person".into(), 100_000)],
            edge_labels: vec![("friend".into(), 500_000)],
            degree_sum: 1_000_000,
            degree_sum_sq: 20_000_000,
            max_degree: 500,
        };
        let priced = Plan::build_with_stats(&chain, &reg, Some(&stats)).unwrap();
        assert!(priced.steps[0].est_cost > 0);
        assert!(!priced.steps[0].par_kernel, "one sweep stays sequential");
        assert!(priced.steps[1].par_kernel, "pagerank fans out at 10^5 nodes");
        assert!(priced.steps[1].est_cost > priced.steps[0].est_cost);
        assert!(priced.total_cost() > 0);
        assert_eq!(priced.par_kernel_count(), 1);
        // Statistics only change the two scheduling hints, never the DAG.
        let strip = |p: &Plan| {
            p.steps
                .iter()
                .map(|s| PlanStep { est_cost: 0, par_kernel: true, ..s.clone() })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&bare), strip(&priced));
    }

    #[test]
    fn invalid_chain_does_not_lower() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "remove_edges"]);
        assert!(Plan::build(&chain, &reg).is_err());
    }

    #[test]
    fn plan_json_roundtrip() {
        let reg = registry::standard();
        let mut chain = ApiChain::from_names(["detect_incorrect_edges", "remove_edges"]);
        chain.steps[0] = ApiCall::new("detect_incorrect_edges");
        let plan = Plan::build(&chain, &reg).unwrap();
        let s = chatgraph_support::json::to_string(&plan);
        let back: Plan = chatgraph_support::json::from_str(&s).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn render_text_sketches_the_dag() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "generate_report"]);
        let plan = Plan::build(&chain, &reg).unwrap();
        let text = plan.render_text();
        assert!(text.contains("node_count"));
        assert!(text.contains("barrier"));
    }
}
