//! The plan scheduler: executes a [`Plan`] with a scoped-thread worker
//! pool, shared `Arc` graph snapshots, and a bounded step-memo cache.
//!
//! ## Execution model
//!
//! The plan decomposes into [`Segment`]s: barrier steps run alone on the
//! scheduler thread against the real [`ExecContext`] (mutations,
//! confirmations, findings reads); barrier-free segments split into
//! independent sub-chains that workers execute against immutable snapshots
//! (`Arc<Graph>`, `Arc<Vec<Graph>>`, the seed) with **empty local
//! findings** — sound because non-barrier steps never read findings.
//!
//! ## Determinism contract
//!
//! For any chain and any worker count, the scheduler produces the same
//! final value, the same `findings` in the same order, and the same *core*
//! event sequence (the seed executor's seven [`ChainEvent`] variants, in
//! the same order with the same payloads) as the sequential reference
//! executor. Mechanism: workers only compute; all observable effects —
//! events, findings, the failure index — are committed on the scheduler
//! thread in step-index order, stopping at the smallest failing index. The
//! extra plan events (`PlanBuilt`, `StepTimed`, `MemoLookup`) are
//! non-core ([`ChainEvent::is_core`]) and may differ across worker counts.
//!
//! ## Memoization
//!
//! Pure steps (non-barriers) are cached in a bounded LRU keyed by an
//! FNV-1a fingerprint of `(api, params, seed, graph-fingerprint, input
//! fingerprint[, database fingerprint for similarity APIs])`. The graph
//! fingerprint hashes the binary encoding of the session graph and is
//! recomputed only after a mutation barrier; steps whose inputs cannot be
//! fingerprinted are executed uncached. Only `Ok` results are stored.
//!
//! ## Coalescing
//!
//! The memo only captures *warm* redundancy; under concurrent duplicate
//! load (many tenants asking the same question of the same graph) identical
//! steps would still each execute once, cold. [`StepMemo::claim`] closes
//! that window with singleflight coalescing: the first claimant of a key
//! becomes the *leader* of an in-flight slot and executes; concurrent
//! claimants park on the slot's condvar and receive the published outcome —
//! `Ok` or the step-attributed failure — without running the handler.
//! Coalescing is bypassed whenever a fault plan is armed: injected faults
//! are per-tenant decisions and must never leak through a shared flight.

use crate::chain::{ApiCall, ApiChain, ChainError};
use crate::descriptor::ApiCategory;
use crate::executor::ExecContext;
use crate::monitor::{ChainEvent, Monitor};
use crate::plan::{InputSource, Plan, Segment};
use crate::registry::ApiRegistry;
use crate::executor::KernelState;
use crate::supervisor::{self, FailurePolicy, FaultPlan, StepFailure, SupervisorConfig};
use crate::value::Value;
use chatgraph_graph::kernels::{ChunkStrategy, KernelPolicy, DEFAULT_KERNEL_CHUNK};
use chatgraph_graph::{binary, Graph};
use chatgraph_support::cancel::CancelToken;
use chatgraph_support::hash::Fnv64;
use chatgraph_support::lru::Lru;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default capacity of the step-memo cache.
pub const DEFAULT_MEMO_CAPACITY: usize = 64;

/// Upper bound a coalesced waiter parks on an in-flight slot before giving
/// up and executing solo. This is a hang backstop, not a tuning knob: a
/// leader that dies publishes an abandonment error through its lease's
/// `Drop` long before this fires.
const COALESCE_WAIT: Duration = Duration::from_secs(10);

/// Hit/miss counters of a [`StepMemo`], read without locking the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed (the step then ran uncached or was stored).
    pub misses: u64,
    /// Misses that never executed: the claimant joined an identical
    /// in-flight execution and received its published outcome.
    pub coalesced: u64,
}

impl MemoStats {
    /// Hit fraction of all lookups (0.0 when no lookup happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Keyed lookups requested (hits + misses).
    pub fn requested(&self) -> u64 {
        self.hits + self.misses
    }

    /// Handler executions actually performed: every miss runs except the
    /// coalesced ones, which ride an in-flight leader instead.
    pub fn executed(&self) -> u64 {
        self.misses.saturating_sub(self.coalesced)
    }
}

/// A shareable bounded step-memo cache with hit/miss counters.
///
/// One private `StepMemo` per [`Scheduler`] is the classic per-session
/// cache. The serving layer promotes a single instance to a *global*
/// cross-session cache by handing the same `Arc<StepMemo>` to every
/// tenant's scheduler ([`Scheduler::with_shared_memo`]). Sharing is sound
/// because the key already fingerprints everything a result depends on —
/// api, params, seed, graph fingerprint (per mutation epoch), input
/// fingerprint, and the database fingerprint for similarity APIs — so a
/// cross-tenant hit proves byte-identical inputs, and only `Ok` values are
/// ever stored (a degraded or faulted step can never leak across tenants).
#[derive(Debug)]
pub struct StepMemo {
    inner: Mutex<MemoInner>,
    /// Whether concurrent identical claims collapse onto one in-flight
    /// execution. Construction-time: flipping it mid-flight would strand
    /// waiters.
    coalesce: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

/// The memo's guarded state: the result cache plus the in-flight slots.
/// One mutex for both makes lookup-or-join-or-lead a single atomic
/// decision, which is what guarantees each unique key executes exactly
/// once under concurrent duplicate load.
#[derive(Debug)]
struct MemoInner {
    lru: Lru<u64, Value>,
    flights: HashMap<u64, Arc<FlightSlot>>,
}

/// One in-flight execution other claimants can park on.
// The two memo-side lock classes never nest the other way: `claim` drops
// `inner` before touching a slot, and a lease publishes to `inner` first,
// then to its slot.
// lockdoc: order(inner < slot)
#[derive(Debug, Default)]
struct FlightSlot {
    /// The published outcome; `None` while the leader is still computing.
    slot: Mutex<Option<Result<Value, StepFailure>>>,
    cv: Condvar,
}

impl FlightSlot {
    /// Parks until the leader publishes, up to `backstop`. `None` on
    /// expiry — the caller then executes solo rather than hang.
    // lockdoc: acquires(slot)
    fn wait(&self, backstop: Duration) -> Option<Result<Value, StepFailure>> {
        // The slot holds one plain published outcome; a publisher panicking
        // mid-store cannot tear an `Option` swap, so recovery is safe.
        // lockdoc: recover(the slot holds a plain whole outcome; poison cannot tear it)
        let mut guard = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + backstop;
        while guard.is_none() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (g, _) = self
                .cv
                .wait_timeout(guard, left)
                .unwrap_or_else(|e| e.into_inner());
            guard = g;
        }
        guard.clone()
    }

    /// Publishes the outcome and wakes every waiter.
    // lockdoc: acquires(slot)
    fn publish(&self, outcome: Result<Value, StepFailure>) {
        // lockdoc: recover(the slot holds a plain whole outcome; poison cannot tear it)
        let mut guard = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *guard = Some(outcome);
        drop(guard);
        self.cv.notify_all();
    }
}

/// What [`StepMemo::claim`] tells its caller to do.
pub enum Claim {
    /// Served from the memo; nothing runs.
    Hit(Value),
    /// The caller executes the step. With a lease it *leads* an in-flight
    /// slot concurrent claimants may join, and must publish its outcome
    /// through the lease. Without one (coalescing off, or a waiter whose
    /// backstop expired) it runs solo and stores any `Ok` itself.
    Run(Option<FlightLease>),
    /// An identical in-flight execution published its outcome while this
    /// caller waited: the shared value, or the shared failure.
    Coalesced(Result<Value, StepFailure>),
}

/// Leadership of one in-flight slot. The leader executes the step and
/// publishes through [`FlightLease::publish`]; if the lease is dropped
/// unpublished (a scheduler-internal death), an abandonment error is
/// published instead so waiters fail immediately rather than hang until
/// their backstop.
pub struct FlightLease {
    memo: Arc<StepMemo>,
    key: u64,
    flight: Arc<FlightSlot>,
    published: bool,
}

impl FlightLease {
    /// Publishes the leader's outcome: an `Ok` is stored in the memo
    /// (failures are shared with waiters but never cached), the in-flight
    /// entry is removed, and every waiter wakes with a clone.
    pub fn publish(mut self, outcome: Result<Value, StepFailure>) {
        self.complete(outcome);
    }

    fn complete(&mut self, outcome: Result<Value, StepFailure>) {
        if self.published {
            return;
        }
        self.published = true;
        {
            let mut inner = self.memo.lock();
            if let Ok(v) = &outcome {
                inner.lru.insert(self.key, v.clone());
            }
            inner.flights.remove(&self.key);
        }
        self.flight.publish(outcome);
    }
}

impl Drop for FlightLease {
    fn drop(&mut self) {
        self.complete(Err(StepFailure::Error(
            "coalesced step leader abandoned the flight".to_owned(),
        )));
    }
}

impl Default for StepMemo {
    fn default() -> Self {
        StepMemo::new(DEFAULT_MEMO_CAPACITY)
    }
}

impl StepMemo {
    /// A memo holding at most `capacity` results (0 disables storage),
    /// with coalescing on.
    pub fn new(capacity: usize) -> Self {
        StepMemo {
            inner: Mutex::new(MemoInner {
                lru: Lru::new(capacity),
                flights: HashMap::new(),
            }),
            coalesce: true,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The same memo with coalescing disabled: every claim that misses
    /// runs solo (the coalescing-off bench baseline).
    pub fn without_coalescing(mut self) -> Self {
        self.coalesce = false;
        self
    }

    /// Whether concurrent identical claims coalesce.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    // lockdoc: acquires(inner)
    fn lock(&self) -> MutexGuard<'_, MemoInner> {
        // A holder can only poison this lock by panicking mid-`get`/`insert`;
        // the cache itself stays structurally valid, so keep using it.
        // lockdoc: recover(memo holders only get/insert; the LRU and flight map stay structurally valid through a panic)
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a fingerprint, counting the hit or miss. This is the plain
    /// (non-coalescing) read used on the fault-armed path.
    pub fn lookup(&self, key: u64) -> Option<Value> {
        let found = self.lock().lru.get(&key).cloned();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Atomically looks up `key`, joins its in-flight execution, or takes
    /// leadership of a new one — the coalescing entry point. The decision
    /// happens under one lock, so of all concurrent claimants of a missing
    /// key exactly one receives a lease; the rest park on the slot (with a
    /// backstop) and return [`Claim::Coalesced`] once the leader publishes.
    pub fn claim(self: &Arc<Self>, key: u64) -> Claim {
        let flight = {
            let mut inner = self.lock();
            if let Some(v) = inner.lru.get(&key) {
                let v = v.clone();
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Claim::Hit(v);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            if !self.coalesce {
                return Claim::Run(None);
            }
            match inner.flights.get(&key) {
                Some(flight) => Arc::clone(flight),
                None => {
                    let flight = Arc::new(FlightSlot::default());
                    inner.flights.insert(key, Arc::clone(&flight));
                    return Claim::Run(Some(FlightLease {
                        memo: Arc::clone(self),
                        key,
                        flight,
                        published: false,
                    }));
                }
            }
        };
        // Follower: the `inner` guard is released; park on the slot alone.
        match flight.wait(COALESCE_WAIT) {
            Some(outcome) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Claim::Coalesced(outcome)
            }
            None => Claim::Run(None),
        }
    }

    /// Stores one `Ok` step result under its fingerprint.
    pub fn store(&self, key: u64, value: Value) {
        self.lock().lru.insert(key, value);
    }

    /// Current number of memoized results.
    pub fn len(&self) -> usize {
        self.lock().lru.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().lru.is_empty()
    }

    /// Drops every memoized result (counters and in-flight slots are kept).
    pub fn clear(&self) {
        self.lock().lru.clear();
    }

    /// Hit/miss/coalesced counters since construction.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

/// The scheduler-relevant slice of a session's execution configuration —
/// the single source of truth for building a [`Scheduler`], so every
/// construction site picks up every knob
/// ([`Scheduler::from_exec_config`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecProfile {
    /// Worker threads for parallel plan segments (clamped to ≥ 1).
    pub workers: usize,
    /// Capacity of the pure-step memo cache (0 disables caching).
    pub memo_capacity: usize,
    /// Work-chunk size for the parallel CSR kernels.
    pub kernel_chunk: usize,
    /// Deadline / retry / failure-policy configuration.
    pub supervisor: SupervisorConfig,
}

impl Default for ExecProfile {
    fn default() -> Self {
        ExecProfile {
            workers: 1,
            memo_capacity: DEFAULT_MEMO_CAPACITY,
            kernel_chunk: DEFAULT_KERNEL_CHUNK,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// Acknowledgement from a [`CommitSink`] for one durable mutation barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitAck {
    /// The durable epoch the commit produced.
    pub epoch: u64,
    /// WAL records the commit appended.
    pub records: usize,
    /// Bytes the commit appended.
    pub bytes: u64,
}

/// A durability hook on the scheduler's mutation barriers.
///
/// When installed ([`Scheduler::set_commit_sink`]), the scheduler calls
/// [`CommitSink::commit`] once per successful graph-mutating barrier step,
/// **before** the step's effects are published to the chain (finding pushed,
/// `StepFinished` emitted, output forwarded). A failed commit aborts the
/// chain with [`ChainError::CommitFailed`] so no later step builds on
/// unlogged state; the in-memory mutation itself stands (the session layer
/// installs the graph even on chain failure).
pub trait CommitSink: Send + Sync + std::fmt::Debug {
    /// Durably records `graph` as the next epoch.
    fn commit(&self, graph: &Graph) -> Result<CommitAck, String>;
}

/// Executes plans with a fixed worker count and a step-memo cache.
///
/// The scheduler is long-lived: a session keeps one and the memo cache
/// carries across chains, so re-running an edited chain re-executes only
/// the steps whose inputs changed.
#[derive(Debug)]
pub struct Scheduler {
    workers: usize,
    kernel_chunk: usize,
    supervisor: SupervisorConfig,
    memo: Arc<StepMemo>,
    commit_sink: Option<Arc<dyn CommitSink>>,
}

impl Scheduler {
    /// A scheduler with `workers` worker threads (clamped to ≥ 1) and the
    /// default memo capacity.
    pub fn new(workers: usize) -> Self {
        Scheduler {
            workers: workers.max(1),
            kernel_chunk: DEFAULT_KERNEL_CHUNK,
            supervisor: SupervisorConfig::default(),
            memo: Arc::new(StepMemo::default()),
            commit_sink: None,
        }
    }

    /// Builds a scheduler from an execution profile — the one construction
    /// path every session goes through, so a new exec knob added here is
    /// picked up everywhere at once.
    pub fn from_exec_config(profile: &ExecProfile) -> Self {
        Scheduler {
            workers: profile.workers.max(1),
            kernel_chunk: profile.kernel_chunk.max(1),
            supervisor: profile.supervisor.clone(),
            memo: Arc::new(StepMemo::new(profile.memo_capacity)),
            commit_sink: None,
        }
    }

    /// Overrides the memo capacity (0 disables memoization) with a fresh
    /// private cache.
    pub fn with_memo_capacity(mut self, capacity: usize) -> Self {
        self.memo = Arc::new(StepMemo::new(capacity));
        self
    }

    /// Replaces the private memo with a shared (possibly global,
    /// cross-session) one.
    pub fn with_shared_memo(mut self, memo: Arc<StepMemo>) -> Self {
        self.memo = memo;
        self
    }

    /// Installs a shared memo on an existing scheduler (the serving layer
    /// does this when a session joins a server's global cache).
    pub fn set_shared_memo(&mut self, memo: Arc<StepMemo>) {
        self.memo = memo;
    }

    /// A handle to the memo cache (for sharing or for reading stats).
    pub fn memo_handle(&self) -> Arc<StepMemo> {
        Arc::clone(&self.memo)
    }

    /// Overrides the CSR kernel chunk size (`exec.kernel_chunk`).
    pub fn with_kernel_chunk(mut self, chunk: usize) -> Self {
        self.kernel_chunk = chunk.max(1);
        self
    }

    /// Overrides the supervisor configuration (`exec.step_deadline_ms`,
    /// `exec.max_retries`, `exec.failure_policy`).
    pub fn with_supervisor(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Arms (or clears) deterministic fault injection for subsequent
    /// chains — the REPL's `:faults` command and the test harness.
    pub fn set_fault_plan(&mut self, faults: Option<FaultPlan>) {
        self.supervisor.faults = faults;
    }

    /// The current supervisor configuration.
    pub fn supervisor(&self) -> &SupervisorConfig {
        &self.supervisor
    }

    /// Mutable access to the supervisor configuration (per-tenant failure
    /// policy overrides in the serving layer and the test harness).
    pub fn supervisor_mut(&mut self) -> &mut SupervisorConfig {
        &mut self.supervisor
    }

    /// Installs (or clears) the durable commit sink called on every
    /// successful mutation barrier.
    pub fn set_commit_sink(&mut self, sink: Option<Arc<dyn CommitSink>>) {
        self.commit_sink = sink;
    }

    /// Whether a durable commit sink is installed.
    pub fn has_commit_sink(&self) -> bool {
        self.commit_sink.is_some()
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Current number of memoized step results.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// Drops all memoized step results (e.g. after replacing the session
    /// graph, although stale entries are harmless — the graph fingerprint
    /// in the key already separates them).
    pub fn clear_memo(&self) {
        self.memo.clear();
    }

    /// Plans and executes `chain` — same contract as
    /// [`crate::execute_chain`], which is this with one worker.
    pub fn execute(
        &self,
        registry: &ApiRegistry,
        chain: &ApiChain,
        ctx: &mut ExecContext,
        monitor: &mut dyn Monitor,
    ) -> Result<Value, ChainError> {
        chain.validate(registry, true)?;
        let diagnostics = crate::analysis::analyze(chain, registry, true);
        if !diagnostics.is_empty() {
            monitor.on_event(&ChainEvent::Diagnostics {
                diagnostics: diagnostics.clone(),
            });
        }
        if let Some(err) = diagnostics.first_error() {
            return Err(ChainError::AnalysisRejected(err.render()));
        }
        // Price the plan against the current epoch's statistics catalog
        // (one cached O(n + m) pass): per-step work estimates order
        // sub-chain dispatch, and steps under the parallelism bar run their
        // CSR kernels sequentially.
        let catalog = ctx.kernels.catalog(&ctx.graph);
        let plan = Plan::build_with_stats(chain, registry, Some(&catalog))?;
        // Interference audit (CG016/CG017): independently re-prove that no
        // parallel segment hides a conflicting effect before running any of
        // it. Plans from `Plan::build` are clean by construction, so this
        // only fires if planning and scheduling ever drift apart.
        let audit = crate::analysis::audit_plan(&plan);
        if !audit.is_empty() {
            monitor.on_event(&ChainEvent::Diagnostics {
                diagnostics: audit.clone(),
            });
        }
        if let Some(err) = audit.first_error() {
            return Err(ChainError::AnalysisRejected(err.render()));
        }
        monitor.on_event(&ChainEvent::ChainStarted { total: chain.len() });
        monitor.on_event(&ChainEvent::PlanBuilt {
            steps: plan.len(),
            deps: plan.dep_count(),
            barriers: plan.barrier_count(),
            par_kernels: plan.par_kernel_count(),
            est_cost: plan.total_cost(),
        });

        // Rebuild the policy for this chain but keep the session's scratch
        // pool: kernel working memory warmed by earlier chains stays warm.
        ctx.kernels.policy = KernelPolicy::new(self.workers, self.kernel_chunk)
            .with_strategy(ChunkStrategy::DegreeWeighted)
            .with_scratch(ctx.kernels.policy.scratch.clone());
        let mut prev = Value::Unit;
        // The graph fingerprint is stable between mutation barriers; cache
        // it per epoch. `None` = not yet computed for the current graph.
        let mut graph_fp: Option<Option<u64>> = None;
        let mut db_fp: Option<Option<u64>> = None;
        for segment in plan.segments() {
            match segment {
                Segment::Barrier(i) => {
                    let step = &chain.steps[i];
                    let pstep = &plan.steps[i];
                    monitor.on_event(&ChainEvent::StepStarted {
                        step: i,
                        api: step.api.clone(),
                    });
                    let input = resolve_input(pstep.input, &prev, ctx);
                    if registry
                        .descriptor(&step.api)
                        .is_some_and(|d| d.requires_confirmation)
                    {
                        monitor.on_event(&ChainEvent::ConfirmationRequested {
                            step: i,
                            api: step.api.clone(),
                        });
                        if !monitor.confirm(i, &step.api, &input.summary()) {
                            return Err(ChainError::Rejected(i, step.api.clone()));
                        }
                    }
                    let start = Instant::now();
                    let retryable = registry
                        .descriptor(&step.api)
                        .is_some_and(|d| d.transient_retryable);
                    // The cost model's call: a barrier under the parallelism
                    // bar runs its CSR kernels sequentially — the pool costs
                    // more than the kernel at that scale.
                    ctx.kernels.policy.workers =
                        if pstep.par_kernel { self.workers } else { 1 };
                    // Barriers run on the scheduler thread against the real
                    // context; the supervisor threads its per-attempt token
                    // into the kernel policy so CSR kernels observe the
                    // deadline at chunk boundaries.
                    let attempted = supervisor::run_step(
                        &self.supervisor,
                        ctx.seed,
                        i,
                        retryable,
                        |token, chunk_delay| {
                            ctx.kernels.policy.cancel = token.clone();
                            ctx.kernels.policy.chunk_delay = chunk_delay;
                            registry.call(&step.api, ctx, input.clone(), step)
                        },
                    );
                    ctx.kernels.policy.cancel = CancelToken::new();
                    ctx.kernels.policy.chunk_delay = Duration::ZERO;
                    for note in &attempted.retries {
                        monitor.on_event(&ChainEvent::StepRetried {
                            step: i,
                            api: step.api.clone(),
                            attempt: note.attempt,
                            backoff_ms: note.backoff_ms,
                            error: note.error.clone(),
                        });
                    }
                    match attempted.result {
                        Ok(output) => {
                            // Durability point: the mutation barrier's epoch
                            // goes to the WAL before any effect of the step
                            // is published to the chain.
                            if pstep.mutates_graph {
                                if let Some(sink) = &self.commit_sink {
                                    match sink.commit(&ctx.graph) {
                                        Ok(ack) => {
                                            monitor.on_event(&ChainEvent::WalAppended {
                                                step: i,
                                                epoch: ack.epoch,
                                                records: ack.records,
                                                bytes: ack.bytes,
                                            });
                                        }
                                        Err(error) => {
                                            monitor.on_event(&ChainEvent::StepFailed {
                                                step: i,
                                                api: step.api.clone(),
                                                error: format!(
                                                    "durable commit failed: {error}"
                                                ),
                                            });
                                            return Err(ChainError::CommitFailed(i, error));
                                        }
                                    }
                                }
                            }
                            ctx.push_finding(&step.api, &output);
                            monitor.on_event(&ChainEvent::StepFinished {
                                step: i,
                                api: step.api.clone(),
                                output: output.value_type(),
                                summary: output.summary(),
                            });
                            monitor.on_event(&ChainEvent::StepTimed {
                                step: i,
                                api: step.api.clone(),
                                micros: start.elapsed().as_micros() as u64,
                                cached: false,
                            });
                            prev = output;
                        }
                        Err(failure) => {
                            emit_failure_detail(monitor, i, &step.api, &failure);
                            // Barriers are never dead-output (their effect
                            // *is* the barrier), so no policy check: abort.
                            monitor.on_event(&ChainEvent::StepFailed {
                                step: i,
                                api: step.api.clone(),
                                error: failure.render(),
                            });
                            return Err(failure.into_chain_error(i));
                        }
                    }
                    if pstep.mutates_graph {
                        graph_fp = None;
                    }
                    drain_kernel_events(ctx, monitor);
                }
                Segment::Parallel(chains) => {
                    let gfp = *graph_fp.get_or_insert_with(|| graph_fingerprint(&ctx.graph));
                    let needs_db = chains.iter().flatten().any(|&j| {
                        registry
                            .descriptor(&chain.steps[j].api)
                            .is_some_and(|d| d.category == ApiCategory::Similarity)
                    });
                    let dfp = if needs_db {
                        *db_fp.get_or_insert_with(|| database_fingerprint(&ctx.database))
                    } else {
                        None
                    };
                    let seg = SegmentRun {
                        scheduler: self,
                        registry,
                        chain,
                        plan: &plan,
                        snapshot: Arc::clone(&ctx.graph),
                        database: Arc::clone(&ctx.database),
                        seed: ctx.seed,
                        graph_fp: gfp,
                        db_fp: dfp,
                        kernels: ctx.kernels.clone(),
                    };
                    let out = seg.run(chains, prev, ctx, monitor);
                    drain_kernel_events(ctx, monitor);
                    prev = out?;
                }
            }
        }
        monitor.on_event(&ChainEvent::ChainFinished);
        Ok(prev)
    }
}

/// Flushes CSR build and kernel timing records accumulated in the context's
/// shared kernel state out to the monitor as plan events.
fn drain_kernel_events(ctx: &ExecContext, monitor: &mut dyn Monitor) {
    for b in ctx.kernels.drain_builds() {
        monitor.on_event(&ChainEvent::CsrBuilt {
            nodes: b.nodes,
            edges: b.edges,
            micros: b.micros,
            delta: b.delta,
        });
    }
    for (kernel, micros, workers) in ctx.kernels.drain_timings() {
        monitor.on_event(&ChainEvent::KernelTimed { kernel, micros, workers });
    }
}

/// Emits the non-core detail event for a supervised failure (timeout /
/// panic); plain errors carry no extra detail beyond `StepFailed`.
fn emit_failure_detail(monitor: &mut dyn Monitor, step: usize, api: &str, failure: &StepFailure) {
    match failure {
        StepFailure::TimedOut(ms) => monitor.on_event(&ChainEvent::StepTimedOut {
            step,
            api: api.to_owned(),
            deadline_ms: *ms,
        }),
        StepFailure::Panicked(msg) => monitor.on_event(&ChainEvent::StepPanicked {
            step,
            api: api.to_owned(),
            message: msg.clone(),
        }),
        StepFailure::Error(_) => {}
    }
}

/// Resolves a statically planned input against the live context.
fn resolve_input(source: InputSource, prev: &Value, ctx: &ExecContext) -> Value {
    match source {
        InputSource::PrevOutput(_) => prev.clone(),
        InputSource::SessionGraph => Value::Graph(Arc::clone(&ctx.graph)),
        InputSource::Unit => Value::Unit,
    }
}

/// What happened when one pure step ran (or was served from cache).
struct StepOutcome {
    result: Result<Value, StepFailure>,
    /// Supervisor retries performed before the final result, in order.
    retries: Vec<supervisor::RetryNote>,
    micros: u64,
    cached: bool,
    /// Whether the result was received from a coalesced in-flight
    /// execution instead of running the handler.
    coalesced: bool,
    memo_checked: bool,
}

impl StepOutcome {
    /// The outcome recorded for a step whose worker thread died without
    /// reporting (a scheduler-internal panic caught at `join`).
    fn pool_panic(msg: String) -> StepOutcome {
        StepOutcome {
            result: Err(StepFailure::Panicked(msg)),
            retries: Vec::new(),
            micros: 0,
            cached: false,
            coalesced: false,
            memo_checked: false,
        }
    }
}

/// Everything a barrier-free segment needs, shareable across workers.
struct SegmentRun<'a> {
    scheduler: &'a Scheduler,
    registry: &'a ApiRegistry,
    chain: &'a ApiChain,
    plan: &'a Plan,
    snapshot: Arc<Graph>,
    database: Arc<Vec<Graph>>,
    seed: u64,
    graph_fp: Option<u64>,
    db_fp: Option<u64>,
    kernels: KernelState,
}

impl SegmentRun<'_> {
    /// Executes the segment's sub-chains and commits results in step-index
    /// order. Returns the output of the segment's last step.
    fn run(
        &self,
        chains: Vec<Vec<usize>>,
        prev: Value,
        ctx: &mut ExecContext,
        monitor: &mut dyn Monitor,
    ) -> Result<Value, ChainError> {
        let threads = self.scheduler.workers.min(chains.len());
        if threads <= 1 {
            return self.run_inline(&chains, prev, ctx, monitor);
        }
        let indices: Vec<usize> = chains.iter().flatten().copied().collect();
        // Pool-internal locks: a worker takes the job queue, drops it, and
        // only then writes an outcome slot — never both at once.
        // lockdoc: order(jobs < outcomes)
        // Handler panics are caught inside `exec_pure`, so these locks can
        // only be poisoned by a scheduler-internal bug; the slots hold
        // plain `Option<StepOutcome>` data that a panic cannot tear.
        // lockdoc: recover(job queue and outcome slots hold plain data; commit re-validates per step)
        // One slot per step in the segment, filled by whichever worker runs
        // that step's sub-chain.
        let outcomes: Vec<Mutex<Option<StepOutcome>>> = indices
            .iter()
            .map(|_| Mutex::new(None))
            .collect();
        let slot_of = |j: usize| indices.iter().position(|&k| k == j);
        // Dispatch sub-chains most-expensive-first (LPT): with estimates in
        // hand, the long analysis starts immediately instead of queueing
        // behind cheap counts. Stable sort, so without statistics (all
        // zero) the historical first-index order is preserved; commit order
        // below is by step index either way, so observable behaviour is
        // identical.
        let mut ordered: Vec<Vec<usize>> = chains.clone();
        ordered.sort_by_key(|sub| {
            std::cmp::Reverse(sub.iter().map(|&j| self.plan.steps[j].est_cost).sum::<u64>())
        });
        let jobs: Mutex<VecDeque<Vec<usize>>> = Mutex::new(ordered.into_iter().collect());
        // Which step each worker is currently executing, for panic
        // attribution at `join`. Handler panics are already caught inside
        // `exec_pure` by the supervisor, so a worker can only die from a
        // scheduler-internal bug — but even then the payload must not be
        // lost or resumed into the caller.
        let current: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let mut pool_panics: Vec<(usize, String)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for w in 0..threads {
                let cur = &current[w];
                let prev = &prev;
                let jobs = &jobs;
                let outcomes = &outcomes;
                let slot_of = &slot_of;
                handles.push(scope.spawn(move || loop {
                    let job = {
                        let mut q = jobs.lock().unwrap_or_else(|e| e.into_inner());
                        q.pop_front()
                    };
                    let Some(sub) = job else { break };
                    let mut local_prev = match self.plan.steps[sub[0]].input {
                        InputSource::PrevOutput(_) => prev.clone(),
                        _ => Value::Unit,
                    };
                    for &j in &sub {
                        cur.store(j, Ordering::Relaxed);
                        let input = self.worker_input(j, &local_prev);
                        let outcome = self.exec_pure(j, input, true);
                        let ok = outcome.result.as_ref().ok().cloned();
                        if let Some(slot) = slot_of(j) {
                            let mut guard =
                                outcomes[slot].lock().unwrap_or_else(|e| e.into_inner());
                            *guard = Some(outcome);
                        }
                        cur.store(usize::MAX, Ordering::Relaxed);
                        // A failure ends this sub-chain; later steps in it
                        // would never have run sequentially either.
                        match ok {
                            Some(v) => local_prev = v,
                            None => break,
                        }
                    }
                }));
            }
            for (w, h) in handles.into_iter().enumerate() {
                if let Err(payload) = h.join() {
                    // Attribute the payload to the step the worker was on
                    // (fall back to the segment's first step if it died
                    // between steps) instead of unwinding into the caller.
                    let at = current[w].load(Ordering::Relaxed);
                    let step = if at == usize::MAX {
                        indices.iter().copied().min().unwrap_or(0)
                    } else {
                        at
                    };
                    pool_panics.push((step, supervisor::panic_message(payload)));
                }
            }
        });
        // Route pool panics through the normal commit path: fill the dead
        // step's slot so the smallest failing index still wins.
        for (step, msg) in pool_panics {
            if let Some(slot) = slot_of(step) {
                let mut guard = outcomes[slot].lock().unwrap_or_else(|e| e.into_inner());
                if guard.is_none() {
                    *guard = Some(StepOutcome::pool_panic(msg));
                }
            }
        }
        // Commit on the scheduler thread in step-index order; the smallest
        // failing index wins, exactly as in sequential execution.
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        let mut last = prev;
        for j in sorted {
            let outcome = slot_of(j).and_then(|s| {
                outcomes[s].lock().unwrap_or_else(|e| e.into_inner()).take()
            });
            let Some(outcome) = outcome else {
                // An empty slot means the step's sub-chain aborted at a
                // smaller failing index, and commit returns at that index
                // first — so this is unreachable; skip defensively.
                continue;
            };
            if let Some(err) = self.commit(j, outcome, ctx, monitor, &mut last) {
                return Err(err);
            }
        }
        Ok(last)
    }

    /// Single-threaded segment execution: interleaved execute-and-commit in
    /// step-index order — byte-for-byte the sequential executor's behaviour
    /// (plus memoization).
    fn run_inline(
        &self,
        chains: &[Vec<usize>],
        prev: Value,
        ctx: &mut ExecContext,
        monitor: &mut dyn Monitor,
    ) -> Result<Value, ChainError> {
        let mut indices: Vec<usize> = chains.iter().flatten().copied().collect();
        indices.sort_unstable();
        let mut last = prev;
        for j in indices {
            let input = self.worker_input(j, &last);
            let outcome = self.exec_pure(j, input, false);
            if let Some(err) = self.commit(j, outcome, ctx, monitor, &mut last) {
                return Err(err);
            }
        }
        Ok(last)
    }

    /// Resolves step `j`'s input inside a worker: the running sub-chain
    /// value for `PrevOutput`, a graph snapshot, or `Unit`.
    fn worker_input(&self, j: usize, local_prev: &Value) -> Value {
        match self.plan.steps[j].input {
            InputSource::PrevOutput(_) => local_prev.clone(),
            InputSource::SessionGraph => Value::Graph(Arc::clone(&self.snapshot)),
            InputSource::Unit => Value::Unit,
        }
    }

    /// Runs one pure step against an isolated context, consulting and
    /// feeding the memo cache. When the segment itself is running across
    /// worker threads (`parallel`), kernel-level parallelism is disabled so
    /// the pool is never oversubscribed — the worker threads *are* the
    /// kernel chunk workers in that regime.
    fn exec_pure(&self, j: usize, input: Value, parallel: bool) -> StepOutcome {
        let call = &self.chain.steps[j];
        let key = self.memo_key(call, &input);
        let retryable = self
            .registry
            .descriptor(&call.api)
            .is_some_and(|d| d.transient_retryable);
        let start = Instant::now();

        // Fault-free path (production serving): there are no fault
        // decisions to order the memo consult against, so the claim happens
        // up front and concurrent identical executions coalesce onto one
        // flight. Identical keys imply identical outcomes — sharing the
        // leader's value *or failure* is observationally identical to
        // running solo.
        if self.scheduler.supervisor.faults.is_none() {
            let outcome = |result, retries, cached, coalesced, memo_checked| StepOutcome {
                result,
                retries,
                micros: start.elapsed().as_micros() as u64,
                cached,
                coalesced,
                memo_checked,
            };
            return match key.map(|k| self.scheduler.memo.claim(k)) {
                Some(Claim::Hit(v)) => outcome(Ok(v), Vec::new(), true, false, true),
                Some(Claim::Coalesced(shared)) => {
                    outcome(shared, Vec::new(), false, true, true)
                }
                Some(Claim::Run(lease)) => {
                    let attempted = self.attempt(j, input, parallel, retryable);
                    match lease {
                        Some(lease) => lease.publish(attempted.result.clone()),
                        None => {
                            if let (Some(k), Ok(v)) = (key, &attempted.result) {
                                self.scheduler.memo.store(k, v.clone());
                            }
                        }
                    }
                    outcome(attempted.result, attempted.retries, false, false, true)
                }
                None => {
                    let attempted = self.attempt(j, input, parallel, retryable);
                    outcome(attempted.result, attempted.retries, false, false, false)
                }
            };
        }

        // Fault-armed path (tests, the REPL's `:faults`): the supervisor
        // decides fault injection *before* this closure runs, so the memo
        // cache (consulted inside) cannot mask injected faults on warm
        // runs. Coalescing is bypassed entirely — injected faults are
        // per-tenant decisions that must never leak through a shared
        // flight.
        let mut cached = false;
        let mut memo_checked = false;
        let attempted = supervisor::run_step(
            &self.scheduler.supervisor,
            self.seed,
            j,
            retryable,
            |token, chunk_delay| {
                memo_checked = key.is_some();
                if let Some(k) = key {
                    if let Some(hit) = self.scheduler.memo.lookup(k) {
                        cached = true;
                        return Ok(hit);
                    }
                }
                self.attempt_once(j, &input, parallel, token, chunk_delay)
            },
        );
        let micros = start.elapsed().as_micros() as u64;
        if !cached {
            if let (Some(k), Ok(v)) = (key, &attempted.result) {
                self.scheduler.memo.store(k, v.clone());
            }
        }
        StepOutcome {
            result: attempted.result,
            retries: attempted.retries,
            micros,
            cached,
            coalesced: false,
            memo_checked,
        }
    }

    /// One supervised execution of step `j` (no memo involvement).
    fn attempt(
        &self,
        j: usize,
        input: Value,
        parallel: bool,
        retryable: bool,
    ) -> supervisor::Attempted {
        supervisor::run_step(
            &self.scheduler.supervisor,
            self.seed,
            j,
            retryable,
            |token, chunk_delay| self.attempt_once(j, &input, parallel, token, chunk_delay),
        )
    }

    /// A single attempt of step `j` against an isolated context. Kernel
    /// parallelism is off when the segment itself spans worker threads
    /// (the pool must not oversubscribe — the worker threads *are* the
    /// kernel chunk workers in that regime) and when the cost model says
    /// the step is too small to pay for the pool.
    fn attempt_once(
        &self,
        j: usize,
        input: &Value,
        parallel: bool,
        token: &CancelToken,
        chunk_delay: Duration,
    ) -> Result<Value, String> {
        let call = &self.chain.steps[j];
        let mut kernels = self.kernels.clone();
        kernels.policy.cancel = token.clone();
        kernels.policy.chunk_delay = chunk_delay;
        kernels.policy.workers = if parallel || !self.plan.steps[j].par_kernel {
            1
        } else {
            self.scheduler.workers
        };
        let mut local = ExecContext {
            graph: Arc::clone(&self.snapshot),
            database: Arc::clone(&self.database),
            findings: Vec::new(),
            seed: self.seed,
            kernels,
        };
        self.registry.call(&call.api, &mut local, input.clone(), call)
    }

    /// The memo key for one call, or `None` when any component cannot be
    /// fingerprinted (then the step simply runs uncached).
    fn memo_key(&self, call: &ApiCall, input: &Value) -> Option<u64> {
        let gfp = self.graph_fp?;
        let ifp = value_fingerprint(input)?;
        let mut h = Fnv64::new();
        h.write_str(&call.api);
        for (k, v) in &call.params {
            h.write_str(k);
            h.write_str(v);
        }
        h.write_u64(self.seed);
        h.write_u64(gfp);
        h.write_u64(ifp);
        if self
            .registry
            .descriptor(&call.api)
            .is_some_and(|d| d.category == ApiCategory::Similarity)
        {
            h.write_u64(self.db_fp?);
        }
        Some(h.finish())
    }

    /// Emits step `j`'s events, records its finding, and advances the
    /// running value — the only place segment effects become observable.
    fn commit(
        &self,
        j: usize,
        outcome: StepOutcome,
        ctx: &mut ExecContext,
        monitor: &mut dyn Monitor,
        last: &mut Value,
    ) -> Option<ChainError> {
        let api = &self.chain.steps[j].api;
        monitor.on_event(&ChainEvent::StepStarted {
            step: j,
            api: api.clone(),
        });
        for note in &outcome.retries {
            monitor.on_event(&ChainEvent::StepRetried {
                step: j,
                api: api.clone(),
                attempt: note.attempt,
                backoff_ms: note.backoff_ms,
                error: note.error.clone(),
            });
        }
        if outcome.memo_checked {
            monitor.on_event(&ChainEvent::MemoLookup {
                step: j,
                api: api.clone(),
                hit: outcome.cached,
            });
        }
        if outcome.coalesced {
            monitor.on_event(&ChainEvent::StepCoalesced {
                step: j,
                api: api.clone(),
            });
        }
        match outcome.result {
            Ok(output) => {
                ctx.push_finding(api, &output);
                monitor.on_event(&ChainEvent::StepFinished {
                    step: j,
                    api: api.clone(),
                    output: output.value_type(),
                    summary: output.summary(),
                });
                monitor.on_event(&ChainEvent::StepTimed {
                    step: j,
                    api: api.clone(),
                    micros: outcome.micros,
                    cached: outcome.cached,
                });
                *last = output;
                None
            }
            Err(failure) => {
                emit_failure_detail(monitor, j, api, &failure);
                if self.scheduler.supervisor.failure_policy == FailurePolicy::SkipDegraded
                    && self.plan.dead_output(j)
                {
                    // The step's output is provably unconsumed downstream:
                    // record a degraded finding and keep the chain alive.
                    // `last` is untouched — a degraded value is never read.
                    let error = failure.render();
                    ctx.push_finding(api, &Value::Text(format!("degraded: {error}")));
                    monitor.on_event(&ChainEvent::DegradedResult {
                        step: j,
                        api: api.clone(),
                        error,
                    });
                    None
                } else {
                    monitor.on_event(&ChainEvent::StepFailed {
                        step: j,
                        api: api.clone(),
                        error: failure.render(),
                    });
                    Some(failure.into_chain_error(j))
                }
            }
        }
    }
}

/// FNV-1a fingerprint of a graph via its binary encoding. `None` when the
/// graph fails to encode (oversized attributes etc.) — memoization is then
/// skipped rather than risking a wrong key.
pub fn graph_fingerprint(g: &Graph) -> Option<u64> {
    binary::to_bytes(g)
        .ok()
        .map(|bytes| chatgraph_support::hash::fnv1a64(&bytes))
}

fn database_fingerprint(db: &[Graph]) -> Option<u64> {
    let mut h = Fnv64::new();
    h.write_u64(db.len() as u64);
    for g in db {
        h.write_u64(graph_fingerprint(g)?);
    }
    Some(h.finish())
}

/// FNV-1a fingerprint of a value. Hand-rolled rather than JSON-based so
/// float payloads hash via `to_bits` (NaN-safe, no formatting wobble).
pub fn value_fingerprint(v: &Value) -> Option<u64> {
    let mut h = Fnv64::new();
    match v {
        Value::Unit => h.write_str("unit"),
        Value::Number(x) => {
            h.write_str("num");
            h.write_u64(x.to_bits());
        }
        Value::Text(t) => {
            h.write_str("text");
            h.write_str(t);
        }
        Value::Bool(b) => {
            h.write_str("bool");
            h.write_u64(u64::from(*b));
        }
        Value::NodeList(ns) => {
            h.write_str("nodes");
            h.write_u64(ns.len() as u64);
            for n in ns {
                h.write_u64(n.index() as u64);
            }
        }
        Value::EdgeList(es) => {
            h.write_str("edges");
            h.write_u64(es.len() as u64);
            for (a, b, l) in es {
                h.write_u64(a.index() as u64);
                h.write_u64(b.index() as u64);
                h.write_str(l);
            }
        }
        Value::Table(t) => {
            h.write_str("table");
            h.write_u64(t.headers.len() as u64);
            for c in &t.headers {
                h.write_str(c);
            }
            h.write_u64(t.rows.len() as u64);
            for row in &t.rows {
                h.write_u64(row.len() as u64);
                for c in row {
                    h.write_str(c);
                }
            }
        }
        Value::Report(r) => {
            h.write_str("report");
            h.write_str(&r.title);
            h.write_u64(r.sections.len() as u64);
            for (a, b) in &r.sections {
                h.write_str(a);
                h.write_str(b);
            }
        }
        Value::Graph(g) => {
            h.write_str("graph");
            h.write_u64(graph_fingerprint(g)?);
        }
    }
    Some(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::CollectingMonitor;
    use crate::registry;
    use chatgraph_graph::generators::{
        knowledge_graph, social_network, KgParams, SocialParams,
    };

    fn social_ctx() -> ExecContext {
        ExecContext::new(social_network(&SocialParams::default(), 1))
    }

    fn core_events(events: &[ChainEvent]) -> Vec<ChainEvent> {
        events.iter().filter(|e| e.is_core()).cloned().collect()
    }

    #[test]
    fn four_workers_match_reference_on_branchy_chain() {
        let reg = registry::standard();
        let chain = ApiChain::from_names([
            "node_count",
            "edge_count",
            "graph_density",
            "largest_component",
            "node_count",
            "generate_report",
        ]);
        let mut ref_ctx = social_ctx();
        let mut ref_mon = CollectingMonitor::new();
        let ref_out =
            crate::executor::execute_chain_reference(&reg, &chain, &mut ref_ctx, &mut ref_mon)
                .unwrap();
        let mut par_ctx = social_ctx();
        let mut par_mon = CollectingMonitor::new();
        let par_out = Scheduler::new(4)
            .execute(&reg, &chain, &mut par_ctx, &mut par_mon)
            .unwrap();
        assert_eq!(par_out, ref_out);
        assert_eq!(par_ctx.findings, ref_ctx.findings);
        assert_eq!(core_events(&par_mon.events), core_events(&ref_mon.events));
    }

    #[test]
    fn plan_built_event_precedes_steps() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "edge_count"]);
        let mut ctx = social_ctx();
        let mut mon = CollectingMonitor::new();
        Scheduler::new(2).execute(&reg, &chain, &mut ctx, &mut mon).unwrap();
        let started = mon
            .events
            .iter()
            .position(|e| matches!(e, ChainEvent::ChainStarted { total: 2 }))
            .expect("ChainStarted must be emitted");
        assert!(matches!(
            mon.events[started + 1],
            ChainEvent::PlanBuilt { steps: 2, barriers: 0, .. }
        ));
        assert!(mon.events[..started]
            .iter()
            .all(|e| matches!(e, ChainEvent::Diagnostics { .. })));
        assert!(matches!(mon.events.last(), Some(ChainEvent::ChainFinished)));
    }

    #[test]
    fn memo_serves_repeated_steps() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_count", "edge_count"]);
        let sched = Scheduler::new(1);
        let mut ctx = social_ctx();
        sched
            .execute(&reg, &chain, &mut ctx, &mut crate::monitor::SilentMonitor)
            .unwrap();
        assert!(sched.memo_len() >= 2);
        // Same chain, same graph: every step is a hit now.
        let mut ctx2 = social_ctx();
        let mut mon = CollectingMonitor::new();
        sched.execute(&reg, &chain, &mut ctx2, &mut mon).unwrap();
        let hits = mon
            .events
            .iter()
            .filter(|e| matches!(e, ChainEvent::MemoLookup { hit: true, .. }))
            .count();
        assert_eq!(hits, 2);
        assert_eq!(ctx2.findings, ctx.findings);
    }

    #[test]
    fn mutation_invalidates_memoized_graph_reads() {
        let reg = registry::standard();
        let sched = Scheduler::new(1);
        let mut g = knowledge_graph(&KgParams::default(), 7);
        chatgraph_graph::generators::corrupt_kg(&mut g, 0.1, 0.0, 7);
        let chain = ApiChain::from_names([
            "edge_count",
            "detect_incorrect_edges",
            "remove_edges",
            "edge_count",
        ]);
        let mut ctx = ExecContext::new(g);
        let mut mon = CollectingMonitor::new();
        let out = sched.execute(&reg, &chain, &mut ctx, &mut mon).unwrap();
        let before = ctx.findings[0].1.as_number().unwrap();
        let after = out.as_number().unwrap();
        assert!(after < before, "post-edit read must not be served stale");
        // No memo hit anywhere: the graph fingerprint changed at the barrier.
        assert!(!mon
            .events
            .iter()
            .any(|e| matches!(e, ChainEvent::MemoLookup { hit: true, .. })));
    }

    #[test]
    fn rejection_and_failure_indices_match_reference() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["detect_incorrect_edges", "remove_edges"]);
        for workers in [1, 4] {
            let mut ctx = ExecContext::new(knowledge_graph(&KgParams::default(), 3));
            let mut mon = CollectingMonitor::with_answers([false]);
            let err = Scheduler::new(workers)
                .execute(&reg, &chain, &mut ctx, &mut mon)
                .unwrap_err();
            assert_eq!(err, ChainError::Rejected(1, "remove_edges".to_owned()));
            assert_eq!(mon.confirm_log.len(), 1);
        }
    }

    #[test]
    fn value_fingerprints_separate_values() {
        let a = value_fingerprint(&Value::Number(1.0));
        let b = value_fingerprint(&Value::Number(2.0));
        assert_ne!(a, b);
        assert_eq!(a, value_fingerprint(&Value::Number(1.0)));
        assert_ne!(
            value_fingerprint(&Value::Text("1".into())),
            value_fingerprint(&Value::Number(1.0))
        );
        // NaN fingerprints consistently instead of poisoning the cache key.
        assert_eq!(
            value_fingerprint(&Value::Number(f64::NAN)),
            value_fingerprint(&Value::Number(f64::NAN))
        );
    }
}
