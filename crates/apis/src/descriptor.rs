//! API metadata.
//!
//! Each API carries the natural-language description the retrieval module
//! embeds (paper §II-A: "the descriptions of APIs … are embedded into
//! high-dimensional vectors"), plus typing information for chain validation.

use crate::value::ValueType;
use chatgraph_analyzer::chain::ParamSpec;

/// Functional category of an API. Mirrors the paper's scenario families;
/// graph-type prediction routes to category-specific APIs (scenario 1:
/// "if G is a social network, social-specific APIs will be invoked").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApiCategory {
    /// Generic structural statistics.
    Structure,
    /// Social-network analysis (communities, centrality, connectivity).
    Social,
    /// Molecule property prediction.
    Molecule,
    /// Similarity search and graph comparison.
    Similarity,
    /// Knowledge-graph inference (incorrect/missing edge detection).
    Knowledge,
    /// Graph editing.
    Edit,
    /// Report/summary generation.
    Report,
}

chatgraph_support::impl_json_enum_unit!(ApiCategory {
    Structure,
    Social,
    Molecule,
    Similarity,
    Knowledge,
    Edit,
    Report,
});

impl ApiCategory {
    /// All categories, in a fixed order.
    pub fn all() -> &'static [ApiCategory] {
        &[
            ApiCategory::Structure,
            ApiCategory::Social,
            ApiCategory::Molecule,
            ApiCategory::Similarity,
            ApiCategory::Knowledge,
            ApiCategory::Edit,
            ApiCategory::Report,
        ]
    }
}

/// Static metadata of one API.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiDescriptor {
    /// Unique snake_case name (the token the LLM emits).
    pub name: String,
    /// Natural-language description, embedded for retrieval.
    pub description: String,
    /// Category.
    pub category: ApiCategory,
    /// Type of the primary input.
    pub input: ValueType,
    /// Type of the output.
    pub output: ValueType,
    /// Whether execution must be confirmed by the user first (graph-edit
    /// APIs, per scenario 3's confirmation step).
    pub requires_confirmation: bool,
    /// Whether the handler mutates the session graph. Mutating steps are
    /// graph-mutation barriers in the execution plan: every later step that
    /// reads the session graph must be ordered after them.
    pub mutates_graph: bool,
    /// Whether the supervisor may re-run the step after a *transient*
    /// failure (timeout or injected fault). True for pure analytics —
    /// re-running them on the same snapshot is side-effect free; cleared
    /// for mutating and confirmation-gated APIs, which are not idempotent.
    pub transient_retryable: bool,
    /// Declared parameter schema: the analyzer lints call parameters
    /// (unknown names, unparseable values, out-of-range values) against it.
    pub params: Vec<ParamSpec>,
}

chatgraph_support::impl_json_struct!(ApiDescriptor {
    name,
    description,
    category,
    input,
    output,
    requires_confirmation,
    mutates_graph,
    transient_retryable,
    params,
});

impl ApiDescriptor {
    /// Convenience constructor.
    pub fn new(
        name: &str,
        description: &str,
        category: ApiCategory,
        input: ValueType,
        output: ValueType,
    ) -> Self {
        ApiDescriptor {
            name: name.to_owned(),
            description: description.to_owned(),
            category,
            input,
            output,
            requires_confirmation: false,
            mutates_graph: false,
            transient_retryable: true,
            params: Vec::new(),
        }
    }

    /// Marks the API as requiring user confirmation. Confirmation-gated
    /// steps are never retried (the user answered once, for one attempt).
    pub fn with_confirmation(mut self) -> Self {
        self.requires_confirmation = true;
        self.transient_retryable = false;
        self
    }

    /// Marks the API as mutating the session graph (a plan barrier).
    /// Mutations are not idempotent, so the supervisor never retries them.
    pub fn with_mutation(mut self) -> Self {
        self.mutates_graph = true;
        self.transient_retryable = false;
        self
    }

    /// Declares the API's parameter schema.
    pub fn with_params<I: IntoIterator<Item = ParamSpec>>(mut self, params: I) -> Self {
        self.params = params.into_iter().collect();
        self
    }

    /// Looks up one declared parameter.
    pub fn param(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// The text embedded by the retrieval module: name + description.
    pub fn retrieval_text(&self) -> String {
        format!("{} {}", self.name.replace('_', " "), self.description)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrieval_text_includes_name_words() {
        let d = ApiDescriptor::new(
            "detect_communities",
            "find communities in a social network",
            ApiCategory::Social,
            ValueType::Graph,
            ValueType::Table,
        );
        assert!(d.retrieval_text().contains("detect communities"));
        assert!(d.retrieval_text().contains("social network"));
        assert!(!d.requires_confirmation);
    }

    #[test]
    fn confirmation_flag() {
        let d = ApiDescriptor::new(
            "remove_edges",
            "remove edges",
            ApiCategory::Edit,
            ValueType::EdgeList,
            ValueType::Number,
        )
        .with_confirmation();
        assert!(d.requires_confirmation);
        assert!(!d.transient_retryable, "confirmed steps are never retried");
    }

    #[test]
    fn retryability_defaults_on_and_clears_for_mutations() {
        let pure = ApiDescriptor::new(
            "node_count",
            "count nodes",
            ApiCategory::Structure,
            ValueType::Graph,
            ValueType::Number,
        );
        assert!(pure.transient_retryable);
        let edit = ApiDescriptor::new(
            "remove_edges",
            "remove edges",
            ApiCategory::Edit,
            ValueType::EdgeList,
            ValueType::Number,
        )
        .with_mutation();
        assert!(!edit.transient_retryable, "mutations are not idempotent");
    }

    #[test]
    fn categories_enumerated() {
        assert_eq!(ApiCategory::all().len(), 7);
    }
}
