//! Lowering into the `chatgraph-analyzer` IR, and the chain-analysis entry
//! points the rest of the system uses.
//!
//! `chatgraph-analyzer` sits *below* this crate (it depends only on
//! `chatgraph-support`), so [`ApiChain`]/[`ApiRegistry`] are lowered into
//! its neutral IR here. Three consumers:
//!
//! * [`crate::execute_chain`] — refuses Error-level diagnostics and emits
//!   the rest through [`crate::ChainEvent::Diagnostics`];
//! * the search-based decoder in `chatgraph-core` — [`can_extend`] prunes
//!   candidate chain extensions that would introduce a type error;
//! * the scenario-4 confirm-and-edit flow — [`analyze`] produces the
//!   warnings shown to the user next to a proposed chain.

use crate::chain::ApiChain;
use crate::plan::{Plan, Segment};
use crate::registry::ApiRegistry;
use crate::value::ValueType;
use chatgraph_analyzer::chain::{
    analyze_chain, ApiSig, Catalog, ChainIr, ChainStep, SigType, TypeClass,
};
use chatgraph_analyzer::diag::Diagnostics;
use chatgraph_analyzer::plan::{PlanIr, PlanStepIr, SegmentIr};

/// Lowers a [`ValueType`] to the analyzer's type representation.
pub fn lower_type(vt: ValueType) -> SigType {
    let class = match vt {
        ValueType::Graph => TypeClass::Graph,
        ValueType::Unit => TypeClass::Unit,
        ValueType::Any => TypeClass::Any,
        _ => TypeClass::Other,
    };
    SigType::new(vt.to_string(), class)
}

/// Lowers a whole registry to an analyzer [`Catalog`].
pub fn lower_registry(registry: &ApiRegistry) -> Catalog {
    Catalog::new(registry.descriptors().into_iter().map(|d| ApiSig {
        name: d.name.clone(),
        input: lower_type(d.input),
        output: lower_type(d.output),
        params: d.params.clone(),
        requires_confirmation: d.requires_confirmation,
        mutates_graph: d.mutates_graph,
    }))
}

/// Lowers a chain to the analyzer IR.
pub fn lower_chain(chain: &ApiChain) -> ChainIr {
    ChainIr {
        steps: chain
            .steps
            .iter()
            .map(|s| ChainStep { api: s.api.clone(), params: s.params.clone() })
            .collect(),
    }
}

/// Runs the full multi-pass analysis over `chain`, collecting every finding
/// (type-flow errors CG001–CG004, parameter lints CG005–CG007/CG014,
/// hygiene warnings CG008–CG010, plan dataflow lints CG011–CG015) instead
/// of stopping at the first.
pub fn analyze(chain: &ApiChain, registry: &ApiRegistry, has_session_graph: bool) -> Diagnostics {
    analyze_chain(&lower_chain(chain), &lower_registry(registry), has_session_graph)
}

/// Lowers a built [`Plan`] (steps plus its segment decomposition) to the
/// analyzer's plan IR for the CG016/CG017 interference audit.
pub fn lower_plan(plan: &Plan) -> PlanIr {
    PlanIr {
        steps: plan
            .steps
            .iter()
            .map(|s| PlanStepIr {
                index: s.index,
                api: s.api.clone(),
                mutates_graph: s.mutates_graph,
                reads_findings: s.reads_findings,
                memoizable: s.memoizable,
                barrier: s.barrier,
                deps: s.deps.clone(),
            })
            .collect(),
        segments: plan
            .segments()
            .into_iter()
            .map(|seg| match seg {
                Segment::Barrier(i) => SegmentIr::Barrier(i),
                Segment::Parallel(chains) => SegmentIr::Parallel(chains),
            })
            .collect(),
    }
}

/// Re-proves the scheduler's barrier classification on a built plan: CG016
/// (Error) when a parallel segment contains a conflicting effect, CG017
/// (Warning) for memoizable findings-readers. On plans from [`Plan::build`]
/// this is always clean — the audit is the independent check that keeps it
/// that way.
pub fn audit_plan(plan: &Plan) -> Diagnostics {
    chatgraph_analyzer::plan::audit_plan(&lower_plan(plan))
}

/// Whether appending `candidate` to a chain whose last API is `prev_api`
/// (`None` = chain start) type-checks — the decoder's pruning predicate.
///
/// Mirrors [`ApiChain::validate`]'s per-step rule exactly: an unknown
/// `candidate` never extends; an unknown `prev_api` does not prune (the
/// error is reported elsewhere, pruning on top would cascade).
pub fn can_extend(
    registry: &ApiRegistry,
    prev_api: Option<&str>,
    candidate: &str,
    has_session_graph: bool,
) -> bool {
    let Some(desc) = registry.descriptor(candidate) else {
        return false;
    };
    let prev_out = match prev_api {
        None => ValueType::Unit,
        Some(p) => match registry.descriptor(p) {
            Some(d) => d.output,
            None => return true,
        },
    };
    desc.input.accepts(prev_out)
        || (desc.input == ValueType::Graph && has_session_graph)
        || desc.input == ValueType::Unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ApiCall;
    use crate::registry;
    use chatgraph_analyzer::diag::Severity;

    fn codes(d: &Diagnostics) -> Vec<&str> {
        d.items.iter().map(|x| x.code.as_str()).collect()
    }

    #[test]
    fn clean_chain_has_no_findings() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["detect_communities", "generate_report"]);
        let d = analyze(&chain, &reg, true);
        assert!(d.is_empty(), "{}", d.render_text());
    }

    #[test]
    fn collects_every_type_error_not_just_the_first() {
        let reg = registry::standard();
        // Two independent mismatches; legacy validate() reports only the first.
        let chain = ApiChain::from_names([
            "node_count",
            "remove_edges",
            "node_count",
            "remove_edges",
        ]);
        let d = analyze(&chain, &reg, true);
        assert!(d.count(Severity::Error) >= 2, "{}", d.render_text());
        assert!(chain.validate(&reg, true).is_err());
    }

    #[test]
    fn unknown_api_suggests_nearest_registered_name() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["node_cout"]);
        let d = analyze(&chain, &reg, true);
        assert_eq!(codes(&d), vec!["CG002"]);
        assert_eq!(d.items[0].suggestion.as_deref(), Some("did you mean `node_count`?"));
    }

    #[test]
    fn parameter_lints_fire_against_declared_schemas() {
        let reg = registry::standard();
        let mut chain = ApiChain::new();
        chain.push(
            ApiCall::new("top_pagerank")
                .with_param("k", "lots") // CG006: unparseable
                .with_param("kk", "3"), // CG005: unknown name
        );
        chain.push(ApiCall::new("generate_report"));
        let d = analyze(&chain, &reg, true);
        let mut cs = codes(&d);
        cs.sort();
        assert_eq!(cs, vec!["CG005", "CG006"]);
        assert!(!d.has_errors(), "parameter lints are warnings");

        let mut chain = ApiChain::new();
        chain.push(ApiCall::new("top_pagerank").with_param("k", "5000")); // CG007
        chain.push(ApiCall::new("generate_report"));
        let d = analyze(&chain, &reg, true);
        assert_eq!(codes(&d), vec!["CG007"]);
    }

    #[test]
    fn confirmation_gated_api_warns_cg010() {
        let reg = registry::standard();
        let chain = ApiChain::from_names(["detect_incorrect_edges", "remove_edges"]);
        let d = analyze(&chain, &reg, true);
        assert!(codes(&d).contains(&"CG010"), "{}", d.render_text());
        assert!(!d.has_errors());
    }

    #[test]
    fn garbage_numeric_param_warns_cg006_for_every_api() {
        // Registry-wide: every declared numeric parameter of every API is
        // covered by the unparseable-value lint, so the executor's silent
        // fall-back to the default (or `try_param_*` error) is never the
        // only signal.
        use chatgraph_analyzer::chain::ParamKind;
        let reg = registry::standard();
        let mut checked = 0usize;
        for d in reg.descriptors() {
            for p in &d.params {
                if p.kind == ParamKind::Text {
                    continue;
                }
                let mut chain = ApiChain::new();
                chain.push(ApiCall::new(&d.name).with_param(&p.name, "not-a-number"));
                let diag = analyze(&chain, &reg, true);
                assert!(
                    diag.items
                        .iter()
                        .any(|x| x.code == "CG006" && x.severity == Severity::Warning),
                    "{} param {}: {}",
                    d.name,
                    p.name,
                    diag.render_text()
                );
                checked += 1;
            }
        }
        assert!(checked >= 8, "expected several numeric params, found {checked}");
    }

    #[test]
    fn mutation_flags_survive_lowering() {
        let reg = registry::standard();
        let cat = lower_registry(&reg);
        for api in ["remove_edges", "add_edges", "relabel_nodes"] {
            assert!(cat.get(api).unwrap().mutates_graph, "{api}");
        }
        for api in ["node_count", "export_graph", "generate_report"] {
            assert!(!cat.get(api).unwrap().mutates_graph, "{api}");
        }
    }

    #[test]
    fn can_extend_prunes_exactly_what_validate_rejects() {
        let reg = registry::standard();
        for has_graph in [false, true] {
            for prev in [None, Some("node_count"), Some("largest_component")] {
                // can_extend models only the candidate step's check, so the
                // equivalence is stated for prefixes that validate themselves.
                if let Some(p) = prev {
                    let mut prefix = ApiChain::new();
                    prefix.push(ApiCall::new(p));
                    if prefix.validate(&reg, has_graph).is_err() {
                        continue;
                    }
                }
                for cand in reg.names() {
                    let mut chain = ApiChain::new();
                    if let Some(p) = prev {
                        chain.push(ApiCall::new(p));
                    }
                    chain.push(ApiCall::new(cand));
                    let valid = chain.validate(&reg, has_graph).is_ok();
                    assert_eq!(
                        can_extend(&reg, prev, cand, has_graph),
                        valid,
                        "prev={prev:?} cand={cand} has_graph={has_graph}"
                    );
                }
            }
        }
    }

    #[test]
    fn analyzer_errors_align_with_validate() {
        let reg = registry::standard();
        let chains = [
            vec!["node_count"],
            vec!["frobnicate"],
            vec!["node_count", "remove_edges"],
            vec!["detect_communities", "generate_report"],
            vec!["graph_stats", "graph_stats", "graph_stats"],
        ];
        for names in chains {
            for has_graph in [false, true] {
                let chain = ApiChain::from_names(names.clone());
                let d = analyze(&chain, &reg, has_graph);
                assert_eq!(
                    chain.validate(&reg, has_graph).is_ok(),
                    !d.has_errors(),
                    "{names:?} has_graph={has_graph}: {}",
                    d.render_text()
                );
            }
        }
    }
}
