//! Differential properties for the chain supervisor (DESIGN.md §11): a
//! passive or fault-free supervisor never changes what a chain produces,
//! and an armed [`FaultPlan`] degrades execution *exactly* as modelled —
//! the same failures at the same steps for every worker count, warm or
//! cold memo, with panics isolated and deadlines enforced cooperatively.

use chatgraph_apis::supervisor::{self, FailurePolicy, FaultPlan, SupervisorConfig};
use chatgraph_apis::{
    analysis, execute_chain_reference, registry, ApiCategory, ApiChain, ApiDescriptor, ChainError,
    ChainEvent, CollectingMonitor, ExecContext, Plan, Scheduler, Value, ValueType,
};
use chatgraph_graph::generators::{knowledge_graph, molecule_database, KgParams, MoleculeParams};
use chatgraph_graph::Graph;
use chatgraph_support::prop::{check, Config};
use chatgraph_support::prop_assert_eq;
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};
use std::panic::AssertUnwindSafe;
use std::sync::Mutex;

/// Serialises panic-hook suppression across tests in this binary: injected
/// panics fly on worker threads, and the default hook would spray their
/// backtraces over the test output.
static PANIC_HOOK: Mutex<()> = Mutex::new(());

fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PANIC_HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match out {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Generator: a chain of 1..=max_len steps where every extension
/// type-checks, so the whole chain is valid by construction.
fn random_valid_chain(rng: &mut StdRng, max_len: usize) -> ApiChain {
    let reg = registry::standard();
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    let len = rng.random_range(1..=max_len);
    let mut picked: Vec<String> = Vec::with_capacity(len);
    for _ in 0..len {
        let prev = picked.last().map(String::as_str);
        let legal: Vec<&String> = names
            .iter()
            .filter(|c| analysis::can_extend(&reg, prev, c, true))
            .collect();
        match legal.as_slice().choose(rng) {
            Some(name) => picked.push((*name).clone()),
            None => break,
        }
    }
    ApiChain::from_names(picked)
}

/// Everything an execution observably produces.
#[derive(Debug)]
struct Observed {
    result: Result<Value, ChainError>,
    findings: Vec<(String, Value)>,
    core_events: Vec<ChainEvent>,
    degraded_steps: Vec<usize>,
    graph: Graph,
}

fn observe(
    run: impl FnOnce(&mut ExecContext, &mut CollectingMonitor) -> Result<Value, ChainError>,
) -> Observed {
    let g = knowledge_graph(
        &KgParams {
            persons: 10,
            cities: 4,
            countries: 2,
            companies: 3,
            employment_rate: 0.5,
            knows_per_person: 1.0,
        },
        7,
    );
    let db = molecule_database(
        3,
        &MoleculeParams { atoms: 8, rings: 1, double_bond_prob: 0.15 },
        5,
    );
    let mut ctx = ExecContext::new(g).with_database(db).with_seed(11);
    let mut mon = CollectingMonitor::new();
    let result = run(&mut ctx, &mut mon);
    let findings = std::mem::take(&mut ctx.findings);
    let degraded_steps = mon
        .events
        .iter()
        .filter_map(|e| match e {
            ChainEvent::DegradedResult { step, .. } => Some(*step),
            _ => None,
        })
        .collect();
    Observed {
        result,
        findings,
        core_events: mon.events.into_iter().filter(ChainEvent::is_core).collect(),
        degraded_steps,
        graph: ctx.into_graph(),
    }
}

/// The step a chain error is attributed to, for errors that carry one.
fn error_step(e: &ChainError) -> Option<usize> {
    match e {
        ChainError::ExecutionFailed(i, _)
        | ChainError::StepPanicked(i, _)
        | ChainError::Rejected(i, _) => Some(*i),
        ChainError::StepTimedOut(i, _) => Some(*i),
        _ => None,
    }
}

/// Runs `chain` under `cfg` at workers 1, 2 and 4 plus a warm-memo re-run,
/// asserting all four observations are identical, and returns the first.
fn supervised_runs_agree(chain: &ApiChain, cfg: &SupervisorConfig) -> Result<Observed, String> {
    let reg = registry::standard();
    let sched4 = Scheduler::new(4).with_supervisor(cfg.clone());
    let mut runs = vec![
        (
            "1 worker",
            observe(|ctx, mon| {
                Scheduler::new(1).with_supervisor(cfg.clone()).execute(&reg, chain, ctx, mon)
            }),
        ),
        (
            "2 workers",
            observe(|ctx, mon| {
                Scheduler::new(2).with_supervisor(cfg.clone()).execute(&reg, chain, ctx, mon)
            }),
        ),
        ("4 workers", observe(|ctx, mon| sched4.execute(&reg, chain, ctx, mon))),
        (
            "4 workers, warm memo",
            observe(|ctx, mon| sched4.execute(&reg, chain, ctx, mon)),
        ),
    ];
    let first = runs.remove(0).1;
    for (label, got) in &runs {
        prop_assert_eq!(&got.result, &first.result, "result differs ({label})");
        prop_assert_eq!(&got.findings, &first.findings, "findings differ ({label})");
        prop_assert_eq!(
            &got.core_events,
            &first.core_events,
            "core events differ ({label})"
        );
        prop_assert_eq!(
            &got.degraded_steps,
            &first.degraded_steps,
            "degraded steps differ ({label})"
        );
        prop_assert_eq!(&got.graph, &first.graph, "final graph differs ({label})");
    }
    Ok(first)
}

/// (a) A fault-free armed supervisor (deadline that never fires, retries
/// configured, SkipDegraded policy) is invisible: execution matches the
/// sequential reference executor bit-for-bit at every worker count.
#[test]
fn fault_free_supervision_matches_reference_executor() {
    let cfg = SupervisorConfig {
        step_deadline_ms: 60_000,
        max_retries: 2,
        failure_policy: FailurePolicy::SkipDegraded,
        ..Default::default()
    };
    check(
        "fault_free_supervision_matches_reference_executor",
        Config::default().with_cases(12),
        |rng, _size| random_valid_chain(rng, 4),
        |chain| {
            let reg = registry::standard();
            let reference = observe(|ctx, mon| execute_chain_reference(&reg, chain, ctx, mon));
            let got = supervised_runs_agree(chain, &cfg)?;
            prop_assert_eq!(&got.result, &reference.result, "result differs from reference");
            prop_assert_eq!(&got.findings, &reference.findings, "findings differ");
            prop_assert_eq!(&got.core_events, &reference.core_events, "core events differ");
            prop_assert_eq!(&got.graph, &reference.graph, "final graph differs");
            prop_assert_eq!(&got.degraded_steps, &Vec::new(), "nothing may degrade");
            Ok(())
        },
    );
}

/// (b) Abort policy: injected faults fail the chain at the *smallest*
/// afflicted step, with the same error for every worker count and memo
/// warmth — and chains with no afflicted step are untouched.
#[test]
fn abort_policy_fails_at_first_afflicted_step_deterministically() {
    quiet(|| {
        check(
            "abort_policy_fails_at_first_afflicted_step_deterministically",
            Config::default().with_cases(10),
            |rng, _size| {
                let chain = random_valid_chain(rng, 4);
                let fault_seed: u64 = rng.random_range(0..1_000_000);
                (chain, fault_seed)
            },
            |(chain, fault_seed)| {
                let faults = FaultPlan::new(*fault_seed)
                    .with_error_rate(0.3)
                    .with_panic_rate(0.2);
                let cfg = SupervisorConfig {
                    max_retries: 1,
                    failure_policy: FailurePolicy::Abort,
                    faults: Some(faults.clone()),
                    ..Default::default()
                };
                let got = supervised_runs_agree(chain, &cfg)?;
                let reg = registry::standard();
                let reference =
                    observe(|ctx, mon| execute_chain_reference(&reg, chain, ctx, mon));
                // Only model the outcome when the chain is natively clean;
                // natively failing chains are covered by the agreement check.
                if reference.result.is_ok() {
                    match faults.afflicted(chain.len()).first() {
                        None => {
                            prop_assert_eq!(
                                &got.result,
                                &reference.result,
                                "no afflicted step, yet the result changed"
                            );
                        }
                        Some(&first) => {
                            let step = got
                                .result
                                .as_ref()
                                .err()
                                .and_then(error_step);
                            prop_assert_eq!(
                                &step,
                                &Some(first),
                                "abort must land on the first afflicted step"
                            );
                        }
                    }
                }
                Ok(())
            },
        );
    });
}

/// (b) SkipDegraded policy: dead-output afflicted steps degrade (exactly
/// the modelled set, in order), load-bearing afflicted steps still abort,
/// and fully-degradable chains complete with one finding per step.
#[test]
fn skip_degraded_matches_the_modelled_degraded_set() {
    quiet(|| {
        check(
            "skip_degraded_matches_the_modelled_degraded_set",
            Config::default().with_cases(10),
            |rng, _size| {
                let chain = random_valid_chain(rng, 5);
                let fault_seed: u64 = rng.random_range(0..1_000_000);
                (chain, fault_seed)
            },
            |(chain, fault_seed)| {
                let reg = registry::standard();
                let faults = FaultPlan::new(*fault_seed)
                    .with_error_rate(0.5)
                    .with_panic_rate(0.2);
                let cfg = SupervisorConfig {
                    max_retries: 0,
                    failure_policy: FailurePolicy::SkipDegraded,
                    faults: Some(faults.clone()),
                    ..Default::default()
                };
                let got = supervised_runs_agree(chain, &cfg)?;
                let reference =
                    observe(|ctx, mon| execute_chain_reference(&reg, chain, ctx, mon));
                if reference.result.is_err() {
                    return Ok(()); // natively failing chain: agreement suffices
                }
                // Model: walk the plan; afflicted dead-output steps degrade,
                // the first afflicted load-bearing step aborts.
                let plan = Plan::build(chain, &reg).map_err(|e| e.to_string())?;
                let mut expect_degraded = Vec::new();
                let mut expect_abort = None;
                for i in faults.afflicted(chain.len()) {
                    if plan.dead_output(i) {
                        expect_degraded.push(i);
                    } else {
                        expect_abort = Some(i);
                        break;
                    }
                }
                match expect_abort {
                    Some(at) => {
                        let step = got.result.as_ref().err().and_then(error_step);
                        prop_assert_eq!(
                            &step,
                            &Some(at),
                            "chain must abort at the first load-bearing afflicted step"
                        );
                    }
                    None => {
                        prop_assert_eq!(
                            &got.result.is_ok(),
                            &true,
                            "fully-degradable chain must complete: {:?}",
                            got.result
                        );
                        prop_assert_eq!(
                            &got.findings.len(),
                            &chain.len(),
                            "every step leaves exactly one finding"
                        );
                        for &d in &expect_degraded {
                            let (_, v) = &got.findings[d];
                            let text = match v {
                                Value::Text(t) => t.as_str(),
                                other => {
                                    return Err(format!(
                                        "degraded finding must be text, got {other:?}"
                                    ))
                                }
                            };
                            prop_assert_eq!(
                                &text.starts_with("degraded:"),
                                &true,
                                "degraded finding is marked"
                            );
                        }
                    }
                }
                prop_assert_eq!(
                    &got.degraded_steps,
                    &expect_degraded,
                    "degraded set must match the model exactly"
                );
                Ok(())
            },
        );
    });
}

/// Deterministic SkipDegraded witness: afflict *only* a dead-output step
/// (`node_count` whose successor reads the session graph, not its output)
/// and watch the chain complete with exactly that step degraded.
#[test]
fn dead_output_step_degrades_and_chain_completes() {
    let reg = registry::standard();
    // node_count's output is unread: edge_count takes the session graph.
    let chain = ApiChain::from_names(["node_count", "edge_count"]);
    let plan = Plan::build(&chain, &reg).unwrap();
    assert!(plan.dead_output(0) && !plan.dead_output(1));
    // Search the seed space for a plan afflicting exactly step 0.
    let fault_seed = (0..10_000)
        .find(|&s| FaultPlan::new(s).with_error_rate(0.5).afflicted(2) == vec![0])
        .expect("some seed afflicts exactly step 0");
    let cfg = SupervisorConfig {
        max_retries: 0,
        failure_policy: FailurePolicy::SkipDegraded,
        faults: Some(FaultPlan::new(fault_seed).with_error_rate(0.5)),
        ..Default::default()
    };
    let got = supervised_runs_agree(&chain, &cfg).unwrap();
    let out = got.result.expect("the chain completes despite the fault");
    let reference = observe(|ctx, mon| execute_chain_reference(&reg, &chain, ctx, mon));
    assert_eq!(Ok(out), reference.result, "the surviving tail is unchanged");
    assert_eq!(got.degraded_steps, vec![0]);
    assert_eq!(got.findings.len(), 2);
    assert!(
        matches!(&got.findings[0].1, Value::Text(t) if t.starts_with("degraded:")),
        "step 0's finding is the degraded marker: {:?}",
        got.findings[0]
    );
    assert_eq!(&got.findings[1], &reference.findings[1]);
    // The same fault under Abort kills the chain at step 0 instead.
    let abort = SupervisorConfig { failure_policy: FailurePolicy::Abort, ..cfg };
    let got = supervised_runs_agree(&chain, &abort).unwrap();
    assert!(
        matches!(&got.result, Err(ChainError::ExecutionFailed(0, m)) if m.contains("injected")),
        "Abort must fail at step 0: {:?}",
        got.result
    );
}

/// (c) Deadlines: a stalled step is cancelled, retried `max_retries` times
/// with the reproducible seeded backoff, and the chain fails with
/// `StepTimedOut` at the stalled step — identically on repeat runs.
#[test]
fn deadline_cancels_stalled_steps_and_retries_reproducibly() {
    let reg = registry::standard();
    let chain = ApiChain::from_names(["detect_communities", "node_count", "generate_report"]);
    // Every step stalls 40ms against an 8ms deadline; the stall is injected
    // both at the step site and as a kernel chunk-delay, so CSR kernels hit
    // the expired token at a chunk boundary and bail cooperatively.
    let faults = FaultPlan::new(1).with_delay(1.0, 40);
    let cfg = SupervisorConfig {
        step_deadline_ms: 8,
        max_retries: 2,
        failure_policy: FailurePolicy::Abort,
        faults: Some(faults),
        ..Default::default()
    };
    let run = |workers: usize| {
        let mut retried: Vec<(usize, usize, u64)> = Vec::new();
        let mut timed_out = Vec::new();
        let obs = observe(|ctx, mon| {
            let r = Scheduler::new(workers)
                .with_supervisor(cfg.clone())
                .execute(&reg, &chain, ctx, mon);
            for e in &mon.events {
                match e {
                    ChainEvent::StepRetried { step, attempt, backoff_ms, .. } => {
                        retried.push((*step, *attempt, *backoff_ms));
                    }
                    ChainEvent::StepTimedOut { step, deadline_ms, .. } => {
                        timed_out.push((*step, *deadline_ms));
                    }
                    _ => {}
                }
            }
            r
        });
        (obs, retried, timed_out)
    };
    for workers in [1, 2] {
        let (obs, retried, timed_out) = run(workers);
        assert_eq!(
            obs.result,
            Err(ChainError::StepTimedOut(0, 8)),
            "the first stalled step must abort the chain ({workers} workers)"
        );
        assert_eq!(timed_out, vec![(0, 8)]);
        // 2 retries, each preceded by the deterministic seeded backoff
        // (ctx seed is 11; backoff keys on (seed, step, completed attempts)).
        assert_eq!(retried.len(), 2, "retried: {retried:?}");
        for (k, &(step, attempt, backoff)) in retried.iter().enumerate() {
            assert_eq!((step, attempt), (0, k + 1));
            assert_eq!(backoff, supervisor::backoff_ms(&cfg, 11, 0, k));
        }
    }
    // Repeat runs are bit-identical (determinism under faults).
    let (a, ra, ta) = run(2);
    let (b, rb, tb) = run(2);
    assert_eq!(a.result, b.result);
    assert_eq!(a.core_events, b.core_events);
    assert_eq!((ra, ta), (rb, tb));
}

/// Satellite (a) regression: a handler that panics is isolated at the
/// supervisor boundary with correct step attribution — the panic payload is
/// neither lost nor resumed through the worker pool — at any worker count.
#[test]
fn panicking_handler_is_isolated_with_step_attribution() {
    let mut reg = registry::standard();
    reg.register(
        ApiDescriptor::new(
            "explode",
            "a test api whose handler panics",
            ApiCategory::Structure,
            ValueType::Graph,
            ValueType::Number,
        ),
        Box::new(|_, _, _| panic!("handler exploded")),
    );
    let chain = ApiChain::from_names(["edge_count", "explode", "graph_density"]);
    quiet(|| {
        for workers in [1, 4] {
            let obs = observe(|ctx, mon| {
                Scheduler::new(workers).execute(&reg, &chain, ctx, mon)
            });
            match &obs.result {
                Err(ChainError::StepPanicked(1, msg)) => {
                    assert!(msg.contains("handler exploded"), "payload kept: {msg}");
                }
                other => panic!("expected StepPanicked(1, _) at {workers} workers, got {other:?}"),
            }
            // Steps before the panic committed; the chain stopped at it.
            assert_eq!(obs.findings.len(), 1, "only edge_count committed");
        }
    });
}
