//! Property-based tests for API chains: the validator is sound (validated
//! chains execute without type errors) and the graph encoding is faithful.

use chatgraph_apis::{
    execute_chain, registry, ApiChain, ChainError, ExecContext, SilentMonitor,
};
use chatgraph_graph::generators::{knowledge_graph, KgParams};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

/// Generator: a chain of 1..=max_len random registered API names.
fn random_chain(rng: &mut StdRng, max_len: usize) -> ApiChain {
    let reg = registry::standard();
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    let len = rng.random_range(1..=max_len);
    let picked: Vec<String> = (0..len)
        .map(|_| names.choose(rng).expect("non-empty registry").clone())
        .collect();
    ApiChain::from_names(picked)
}

/// Shared check behind the soundness property and its recorded regression.
fn check_validated_chain_executes(chain: &ApiChain) -> Result<(), String> {
    let reg = registry::standard();
    // A KG exercises the edit APIs' confirmation path too.
    let g = knowledge_graph(
        &KgParams {
            persons: 10,
            cities: 4,
            countries: 2,
            companies: 3,
            employment_rate: 0.5,
            knows_per_person: 1.0,
        },
        1,
    );
    match chain.validate(&reg, true) {
        Ok(()) => {
            let mut ctx = ExecContext::new(g);
            match execute_chain(&reg, chain, &mut ctx, &mut SilentMonitor) {
                Ok(_) => {}
                Err(ChainError::ExecutionFailed(_, msg)) => {
                    // Runtime failures must be about data, not typing.
                    prop_assert!(
                        !msg.contains("expects"),
                        "type error slipped past validation: {msg}"
                    );
                }
                Err(other) => {
                    prop_assert!(false, "unexpected error class: {other}");
                }
            }
        }
        Err(ChainError::TypeMismatch { step, .. }) => {
            // The mismatch must be real: the step's declared input type
            // does not accept the previous step's output (Unit at the
            // chain start).
            let prev_out = if step == 0 {
                chatgraph_apis::ValueType::Unit
            } else {
                reg.descriptor(&chain.steps[step - 1].api).unwrap().output
            };
            let cur_in = reg.descriptor(&chain.steps[step].api).unwrap().input;
            prop_assert!(!cur_in.accepts(prev_out));
            prop_assert!(cur_in != chatgraph_apis::ValueType::Graph);
        }
        Err(ChainError::Empty) | Err(ChainError::UnknownApi(..)) => {
            prop_assert!(false, "unexpected validation failure");
        }
        Err(_) => {}
    }
    Ok(())
}

/// Soundness: a chain the validator accepts never fails with a *type*
/// error at execution time (handlers may still fail on missing
/// parameters or empty databases — those are runtime errors, not type
/// errors — and rejections cannot happen with an all-yes monitor).
#[test]
fn validated_chains_execute_without_type_errors() {
    check(
        "validated_chains_execute_without_type_errors",
        Config::default(),
        |rng, _size| random_chain(rng, 4),
        check_validated_chain_executes,
    );
}

/// Regression: the single-step `add_edges` chain recorded by the old
/// proptest harness (formerly `chain_properties.proptest-regressions`).
#[test]
fn regression_single_add_edges_chain() {
    let chain = ApiChain::from_names(["add_edges".to_string()]);
    check_validated_chain_executes(&chain).unwrap();
}

/// The chain ↔ graph encoding preserves names, order and length.
#[test]
fn chain_graph_encoding_faithful() {
    check(
        "chain_graph_encoding_faithful",
        Config::default(),
        |rng, _size| random_chain(rng, 6),
        |chain| {
            let g = chain.to_graph().unwrap();
            prop_assert_eq!(g.node_count(), chain.len());
            prop_assert_eq!(g.edge_count(), chain.len().saturating_sub(1));
            let labels: Vec<String> = g
                .node_ids()
                .map(|v| g.node_label(v).unwrap().to_owned())
                .collect();
            let names: Vec<String> = chain.api_names().into_iter().map(str::to_owned).collect();
            prop_assert_eq!(labels, names);
            // The encoding is a simple directed path: in/out degrees ≤ 1.
            for v in g.node_ids() {
                prop_assert!(g.degree(v) <= 1);
                prop_assert!(g.in_degree(v) <= 1);
            }
            Ok(())
        },
    );
}

/// JSON round-trips arbitrary chains.
#[test]
fn chain_json_roundtrip() {
    check(
        "chain_json_roundtrip",
        Config::default(),
        |rng, _size| random_chain(rng, 5),
        |chain| {
            let s = chatgraph_support::json::to_string(chain);
            prop_assert_eq!(
                &chatgraph_support::json::from_str::<ApiChain>(&s).unwrap(),
                chain
            );
            Ok(())
        },
    );
}

/// Editing operations keep indices consistent.
#[test]
fn chain_editing_consistency() {
    check(
        "chain_editing_consistency",
        Config::default(),
        |rng, _size| (random_chain(rng, 5), rng.random_range(0usize..8)),
        |(chain, idx)| {
            let idx = *idx;
            let mut c = chain.clone();
            let before = c.len();
            c.insert(idx, chatgraph_apis::ApiCall::new("node_count"));
            prop_assert_eq!(c.len(), before + 1);
            let clamped = idx.min(before);
            prop_assert_eq!(c.steps[clamped].api.as_str(), "node_count");
            let removed = c.remove(clamped).unwrap();
            prop_assert_eq!(removed.api.as_str(), "node_count");
            prop_assert_eq!(c.len(), before);
            prop_assert_eq!(c.api_names(), chain.api_names());
            Ok(())
        },
    );
}
