//! Property-based tests for API chains: the validator is sound (validated
//! chains execute without type errors) and the graph encoding is faithful.

use chatgraph_apis::{
    execute_chain, registry, ApiChain, ChainError, ExecContext, SilentMonitor,
};
use chatgraph_graph::generators::{knowledge_graph, KgParams};
use proptest::prelude::*;

fn random_chain(max_len: usize) -> impl Strategy<Value = ApiChain> {
    let reg = registry::standard();
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    prop::collection::vec(prop::sample::select(names), 1..=max_len)
        .prop_map(ApiChain::from_names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Soundness: a chain the validator accepts never fails with a *type*
    /// error at execution time (handlers may still fail on missing
    /// parameters or empty databases — those are runtime errors, not type
    /// errors — and rejections cannot happen with an all-yes monitor).
    #[test]
    fn validated_chains_execute_without_type_errors(chain in random_chain(4)) {
        let reg = registry::standard();
        // A KG exercises the edit APIs' confirmation path too.
        let g = knowledge_graph(&KgParams {
            persons: 10, cities: 4, countries: 2, companies: 3,
            employment_rate: 0.5, knows_per_person: 1.0,
        }, 1);
        match chain.validate(&reg, true) {
            Ok(()) => {
                let mut ctx = ExecContext::new(g);
                match execute_chain(&reg, &chain, &mut ctx, &mut SilentMonitor) {
                    Ok(_) => {}
                    Err(ChainError::ExecutionFailed(_, msg)) => {
                        // Runtime failures must be about data, not typing.
                        prop_assert!(
                            !msg.contains("expects"),
                            "type error slipped past validation: {msg}"
                        );
                    }
                    Err(other) => {
                        prop_assert!(false, "unexpected error class: {other}");
                    }
                }
            }
            Err(ChainError::TypeMismatch { step, .. }) => {
                // The mismatch must be real: the step's declared input type
                // does not accept the previous step's output (Unit at the
                // chain start).
                let prev_out = if step == 0 {
                    chatgraph_apis::ValueType::Unit
                } else {
                    reg.descriptor(&chain.steps[step - 1].api).unwrap().output
                };
                let cur_in = reg.descriptor(&chain.steps[step].api).unwrap().input;
                prop_assert!(!cur_in.accepts(prev_out));
                prop_assert!(cur_in != chatgraph_apis::ValueType::Graph);
            }
            Err(ChainError::Empty) | Err(ChainError::UnknownApi(..)) => {
                prop_assert!(false, "unexpected validation failure");
            }
            Err(_) => {}
        }
    }

    /// The chain ↔ graph encoding preserves names, order and length.
    #[test]
    fn chain_graph_encoding_faithful(chain in random_chain(6)) {
        let g = chain.to_graph();
        prop_assert_eq!(g.node_count(), chain.len());
        prop_assert_eq!(g.edge_count(), chain.len().saturating_sub(1));
        let labels: Vec<String> = g
            .node_ids()
            .map(|v| g.node_label(v).unwrap().to_owned())
            .collect();
        let names: Vec<String> = chain.api_names().into_iter().map(str::to_owned).collect();
        prop_assert_eq!(labels, names);
        // The encoding is a simple directed path: in/out degrees ≤ 1.
        for v in g.node_ids() {
            prop_assert!(g.degree(v) <= 1);
            prop_assert!(g.in_degree(v) <= 1);
        }
    }

    /// Serde round-trips arbitrary chains.
    #[test]
    fn chain_serde_roundtrip(chain in random_chain(5)) {
        let s = serde_json::to_string(&chain).unwrap();
        prop_assert_eq!(serde_json::from_str::<ApiChain>(&s).unwrap(), chain);
    }

    /// Editing operations keep indices consistent.
    #[test]
    fn chain_editing_consistency(chain in random_chain(5), idx in 0usize..8) {
        let mut c = chain.clone();
        let before = c.len();
        c.insert(idx, chatgraph_apis::ApiCall::new("node_count"));
        prop_assert_eq!(c.len(), before + 1);
        let clamped = idx.min(before);
        prop_assert_eq!(c.steps[clamped].api.as_str(), "node_count");
        let removed = c.remove(clamped).unwrap();
        prop_assert_eq!(removed.api.as_str(), "node_count");
        prop_assert_eq!(c.len(), before);
        prop_assert_eq!(c.api_names(), chain.api_names());
    }
}
