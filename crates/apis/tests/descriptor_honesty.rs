//! Descriptor-honesty contract: `mutates_graph` is load-bearing metadata —
//! the planner turns it into barriers (DESIGN.md §9) and the CG016 audit
//! re-proves segment safety from it — so every handler must live up to its
//! flag. For each API in the standard registry this test synthesizes an
//! input that exercises the handler and checks that the session graph's
//! fingerprint changed if and only if the descriptor says it mutates.
//!
//! Non-mutating APIs get the stronger form of the claim: the fingerprint
//! must be unchanged even when the handler returns an error (a handler that
//! mutates and then fails would still poison parallel segments).

use chatgraph_apis::sched::graph_fingerprint;
use chatgraph_apis::{registry, ApiCall, ExecContext, Value, ValueType};
use chatgraph_graph::generators::{knowledge_graph, molecule_database, KgParams, MoleculeParams};
use chatgraph_graph::NodeId;
use std::sync::Arc;

fn seeded_ctx() -> ExecContext {
    let g = knowledge_graph(
        &KgParams {
            persons: 8,
            cities: 3,
            countries: 2,
            companies: 2,
            employment_rate: 0.5,
            knows_per_person: 1.0,
        },
        13,
    );
    let db = molecule_database(
        2,
        &MoleculeParams { atoms: 6, rings: 1, double_bond_prob: 0.1 },
        3,
    );
    ExecContext::new(g).with_database(db).with_seed(17)
}

/// An existing edge of the session graph as an `(src, dst, label)` triple.
fn existing_edge(ctx: &ExecContext) -> (NodeId, NodeId, String) {
    let g = &ctx.graph;
    let e = g.edge_ids().next().expect("seeded KG has edges");
    let (s, d) = g.edge_endpoints(e).expect("live edge");
    let label = g.edge_label(e).expect("live edge").to_owned();
    (s, d, label)
}

/// A node pair with no edge between them (in the stored direction).
fn absent_edge(ctx: &ExecContext) -> (NodeId, NodeId, String) {
    let g = &ctx.graph;
    let ids: Vec<NodeId> = g.node_ids().collect();
    for &s in &ids {
        for &d in &ids {
            if s != d && g.find_edge(s, d).is_none() {
                return (s, d, "synthetic".to_owned());
            }
        }
    }
    panic!("seeded KG is not complete; an absent pair must exist");
}

/// A generic input of the declared type, enough to drive the handler.
fn synthesize_input(ctx: &ExecContext, vt: ValueType) -> Value {
    match vt {
        ValueType::Graph => Value::Graph(Arc::clone(&ctx.graph)),
        ValueType::Number => Value::Number(3.0),
        ValueType::Text => Value::Text("probe".to_owned()),
        ValueType::Bool => Value::Bool(true),
        ValueType::NodeList => Value::NodeList(ctx.graph.node_ids().take(2).collect()),
        ValueType::EdgeList => Value::EdgeList(vec![existing_edge(ctx)]),
        // Table/Report inputs do not occur in the standard catalogue; Any
        // accepts whatever we hand it. Unit-input APIs ignore the value.
        _ => Value::Unit,
    }
}

#[test]
fn handlers_honour_their_mutation_flag() {
    let reg = registry::standard();
    for desc in reg.descriptors() {
        let name = desc.name.clone();
        let mut ctx = seeded_ctx();

        // Mutating APIs get a witness input guaranteed to cause a visible
        // edit; anything else gets a generic probe of the declared type.
        let (input, call) = if desc.mutates_graph {
            match name.as_str() {
                "remove_edges" => (
                    Value::EdgeList(vec![existing_edge(&ctx)]),
                    ApiCall::new(&name),
                ),
                "add_edges" => (
                    Value::EdgeList(vec![absent_edge(&ctx)]),
                    ApiCall::new(&name),
                ),
                "relabel_nodes" => (
                    Value::Unit,
                    ApiCall::new(&name)
                        .with_param("from", "Person")
                        .with_param("to", "__renamed__"),
                ),
                other => panic!(
                    "API `{other}` is flagged mutates_graph but this test has \
                     no mutation witness for it — add one so the contract \
                     stays exhaustive"
                ),
            }
        } else {
            (synthesize_input(&ctx, desc.input), ApiCall::new(&name))
        };

        let before = graph_fingerprint(&ctx.graph);
        assert!(before.is_some(), "{name}: seeded graph must fingerprint");
        let result = reg.call(&name, &mut ctx, input, &call);
        let after = graph_fingerprint(&ctx.graph);

        if desc.mutates_graph {
            let out = result.unwrap_or_else(|e| {
                panic!("{name}: mutation witness must execute, got error: {e}")
            });
            assert!(
                matches!(out, Value::Number(n) if n >= 1.0),
                "{name}: witness should report at least one edit, got {out:?}"
            );
            assert_ne!(
                before, after,
                "{name}: descriptor says mutates_graph but the graph \
                 fingerprint did not change"
            );
        } else {
            // Errors are fine for under-provisioned probes (e.g. similarity
            // APIs fed a KG); silent mutation is not.
            assert_eq!(
                before, after,
                "{name}: descriptor says non-mutating but the graph \
                 fingerprint changed (result: {result:?})"
            );
        }
    }
}

/// The flag set itself is pinned: exactly the three edit APIs mutate, and
/// every mutating API is confirmation-gated and non-retryable.
#[test]
fn mutation_flags_are_the_expected_set() {
    let reg = registry::standard();
    let mutating: Vec<&str> = reg
        .descriptors()
        .into_iter()
        .filter(|d| d.mutates_graph)
        .map(|d| d.name.as_str())
        .collect();
    assert_eq!(mutating, vec!["add_edges", "relabel_nodes", "remove_edges"]);
    for name in mutating {
        let d = reg.descriptor(name).unwrap();
        assert!(d.requires_confirmation, "{name}: edits must be confirmed");
        assert!(!d.transient_retryable, "{name}: edits are not idempotent");
    }
}
