//! Properties of singleflight step coalescing (DESIGN.md §15): concurrent
//! identical (epoch-fingerprint, step-key) executions collapse onto one
//! computation, and coalescing is observationally invisible — every waiter
//! sees bit-for-bit what a solo run would have produced, for successes
//! *and* failures. A panicking leader fails all waiters with the same
//! step-attributed error and never leaves them hanging; a fault-armed
//! supervisor bypasses coalescing entirely so injected faults cannot leak
//! across tenants through a shared flight.

use chatgraph_apis::supervisor::SupervisorConfig;
use chatgraph_apis::{
    registry, ApiCategory, ApiChain, ApiDescriptor, ChainError, ChainEvent, CollectingMonitor,
    ExecContext, FaultPlan, Scheduler, StepMemo, Value, ValueType,
};
use chatgraph_graph::generators::{social_network, SocialParams};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;

/// Serialises panic-hook suppression across tests in this binary (the
/// panicking-leader test panics on a worker thread).
static PANIC_HOOK: Mutex<()> = Mutex::new(());

fn quiet<T>(f: impl FnOnce() -> T) -> T {
    let _guard = PANIC_HOOK.lock().unwrap_or_else(|e| e.into_inner());
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = std::panic::catch_unwind(AssertUnwindSafe(f));
    std::panic::set_hook(hook);
    match out {
        Ok(v) => v,
        Err(p) => std::panic::resume_unwind(p),
    }
}

/// Every tenant gets the *same* graph (same generator seed) and the same
/// context seed, so identical chains produce identical memo keys — the
/// cross-tenant duplicate regime the serving bench models.
fn ctx() -> ExecContext {
    ExecContext::new(social_network(&SocialParams::default(), 33)).with_seed(11)
}

/// One execution's observable outcome.
#[derive(Debug, PartialEq)]
struct Observed {
    result: Result<Value, ChainError>,
    findings: Vec<(String, Value)>,
    core_events: Vec<ChainEvent>,
    coalesced_events: usize,
}

fn observe(run: impl FnOnce(&mut ExecContext, &mut CollectingMonitor) -> Result<Value, ChainError>) -> Observed {
    let mut ctx = ctx();
    let mut mon = CollectingMonitor::new();
    let result = run(&mut ctx, &mut mon);
    let findings = std::mem::take(&mut ctx.findings);
    let coalesced_events = mon
        .events
        .iter()
        .filter(|e| matches!(e, ChainEvent::StepCoalesced { .. }))
        .count();
    Observed {
        result,
        findings,
        core_events: mon.events.into_iter().filter(ChainEvent::is_core).collect(),
        coalesced_events,
    }
}

/// `threads` concurrent executions of `chain`, all sharing `memo`, released
/// together by a barrier. Returns each thread's observation.
fn concurrent_runs(
    reg: &chatgraph_apis::ApiRegistry,
    chain: &ApiChain,
    memo: &Arc<StepMemo>,
    workers: usize,
    threads: usize,
    supervisor: &SupervisorConfig,
) -> Vec<Observed> {
    let barrier = Barrier::new(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let sched = Scheduler::new(workers)
                        .with_shared_memo(Arc::clone(memo))
                        .with_supervisor(supervisor.clone());
                    barrier.wait();
                    observe(|ctx, mon| sched.execute(reg, chain, ctx, mon))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("runner thread")).collect()
    })
}

/// A registry whose extra `probe` API counts its executions and holds the
/// flight open long enough for concurrent claimants to pile onto it.
fn probe_registry(
    counter: Arc<AtomicUsize>,
    hold: Duration,
    panics: bool,
) -> chatgraph_apis::ApiRegistry {
    let mut reg = registry::standard();
    reg.register(
        ApiDescriptor::new(
            "probe",
            "test api counting distinct executions",
            ApiCategory::Structure,
            ValueType::Graph,
            ValueType::Number,
        ),
        Box::new(move |_, _, _| {
            counter.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(hold);
            if panics {
                panic!("probe exploded");
            }
            Ok(Value::Number(42.0))
        }),
    );
    reg
}

/// (c) Differential: at pool widths 1, 2 and 4, cold and warm, a chain
/// executed by concurrent coalescing tenants is bit-identical to the same
/// chain run solo — results, findings, and core events.
#[test]
fn coalesced_runs_match_solo_bit_identically_at_all_widths() {
    let reg = registry::standard();
    let chains = [
        ApiChain::from_names(["node_count", "edge_count", "graph_density"]),
        ApiChain::from_names(["detect_communities", "node_count", "generate_report"]),
        ApiChain::from_names(["node_count", "triangle_count"]),
    ];
    for chain in &chains {
        for workers in [1, 2, 4] {
            let solo = observe(|ctx, mon| {
                Scheduler::new(workers).execute(&reg, chain, ctx, mon)
            });
            let memo = Arc::new(StepMemo::new(256));
            // Cold: every tenant races the same fresh shared memo.
            let cold =
                concurrent_runs(&reg, chain, &memo, workers, 4, &SupervisorConfig::default());
            for got in &cold {
                assert_eq!(got.result, solo.result, "cold result ({workers} workers)");
                assert_eq!(got.findings, solo.findings, "cold findings ({workers} workers)");
                assert_eq!(
                    got.core_events, solo.core_events,
                    "cold core events ({workers} workers)"
                );
            }
            // Warm: one more tenant over the now-populated memo.
            let sched = Scheduler::new(workers).with_shared_memo(Arc::clone(&memo));
            let warm = observe(|ctx, mon| sched.execute(&reg, chain, ctx, mon));
            assert_eq!(warm.result, solo.result, "warm result ({workers} workers)");
            assert_eq!(warm.findings, solo.findings, "warm findings ({workers} workers)");
            assert_eq!(
                warm.core_events, solo.core_events,
                "warm core events ({workers} workers)"
            );
            assert_eq!(warm.coalesced_events, 0, "a warm run hits, it never waits");
        }
    }
}

/// (c) Exactly-once: N tenants concurrently executing the same single-step
/// chain drive exactly one handler execution; everyone else is served by
/// the flight or the memo, and the accounting proves it.
#[test]
fn concurrent_duplicates_execute_exactly_once() {
    const TENANTS: usize = 8;
    let counter = Arc::new(AtomicUsize::new(0));
    let reg = probe_registry(Arc::clone(&counter), Duration::from_millis(150), false);
    let chain = ApiChain::from_names(["probe"]);
    let memo = Arc::new(StepMemo::new(64));
    let runs = concurrent_runs(&reg, &chain, &memo, 2, TENANTS, &SupervisorConfig::default());

    assert_eq!(counter.load(Ordering::SeqCst), 1, "the probe ran exactly once");
    for got in &runs {
        assert_eq!(got.result, Ok(Value::Number(42.0)));
    }
    let stats = memo.stats();
    assert_eq!(stats.requested(), TENANTS as u64, "every tenant consulted the memo");
    assert_eq!(stats.executed(), 1, "one miss actually executed: {stats:?}");
    assert_eq!(stats.misses - stats.coalesced, 1);
    // The non-core StepCoalesced feed agrees with the counter.
    let events: usize = runs.iter().map(|o| o.coalesced_events).sum();
    assert_eq!(events as u64, stats.coalesced, "one StepCoalesced per coalesced claim");
    assert!(stats.coalesced >= 1, "the 150ms hold must coalesce someone: {stats:?}");
}

/// (c) Failure sharing: a panicking coalesced step fails ALL waiters with
/// the same step-attributed error — nobody hangs, nobody retries the
/// panic into a second execution, and the failure is never cached.
#[test]
fn panicking_leader_fails_all_waiters_with_step_attribution() {
    const TENANTS: usize = 6;
    quiet(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let reg = probe_registry(Arc::clone(&counter), Duration::from_millis(150), true);
        let chain = ApiChain::from_names(["probe"]);
        let memo = Arc::new(StepMemo::new(64));
        let cfg = SupervisorConfig { max_retries: 0, ..Default::default() };
        let runs = concurrent_runs(&reg, &chain, &memo, 2, TENANTS, &cfg);

        assert_eq!(counter.load(Ordering::SeqCst), 1, "the panicking probe ran exactly once");
        for got in &runs {
            match &got.result {
                Err(ChainError::StepPanicked(0, msg)) => {
                    assert!(msg.contains("probe exploded"), "payload survives sharing: {msg}");
                }
                other => panic!("every tenant gets the leader's panic, got {other:?}"),
            }
        }
        // Failures are shared with the flight's waiters but never cached:
        // a later solo run re-executes (and panics again, on its own).
        assert_eq!(memo.len(), 0, "a failed flight must not populate the LRU");
        let stats = memo.stats();
        assert_eq!(stats.executed(), 1, "{stats:?}");
        let again = concurrent_runs(&reg, &chain, &memo, 2, 1, &cfg);
        assert_eq!(counter.load(Ordering::SeqCst), 2, "failures are not memoized");
        assert!(matches!(&again[0].result, Err(ChainError::StepPanicked(0, _))));
    });
}

/// Fault isolation: with an armed fault plan (even an all-zero-rate one)
/// coalescing is bypassed — fault decisions are per-tenant and must never
/// leak through a shared flight. Every tenant that misses executes.
#[test]
fn fault_armed_supervisor_bypasses_coalescing() {
    const TENANTS: usize = 4;
    let counter = Arc::new(AtomicUsize::new(0));
    let reg = probe_registry(Arc::clone(&counter), Duration::from_millis(100), false);
    let chain = ApiChain::from_names(["probe"]);
    let memo = Arc::new(StepMemo::new(64));
    let cfg = SupervisorConfig {
        faults: Some(FaultPlan::new(7)), // armed, all rates zero
        ..Default::default()
    };
    let runs = concurrent_runs(&reg, &chain, &memo, 2, TENANTS, &cfg);
    for got in &runs {
        assert_eq!(got.result, Ok(Value::Number(42.0)));
        assert_eq!(got.coalesced_events, 0);
    }
    let stats = memo.stats();
    assert_eq!(stats.coalesced, 0, "no flight sharing on the fault-armed path: {stats:?}");
    // The 100ms hold keeps the memo empty while every tenant looks up, so
    // each one executes privately — the legacy pre-coalescing behaviour.
    assert!(counter.load(Ordering::SeqCst) >= 1);
}

/// The explicit opt-out: a memo built `without_coalescing` never parks a
/// claimant — concurrent duplicates all execute, exactly as before the
/// singleflight landed.
#[test]
fn without_coalescing_disables_flight_sharing() {
    const TENANTS: usize = 4;
    let counter = Arc::new(AtomicUsize::new(0));
    let reg = probe_registry(Arc::clone(&counter), Duration::from_millis(100), false);
    let chain = ApiChain::from_names(["probe"]);
    let memo = Arc::new(StepMemo::new(64).without_coalescing());
    assert!(!memo.coalescing());
    let runs = concurrent_runs(&reg, &chain, &memo, 2, TENANTS, &SupervisorConfig::default());
    for got in &runs {
        assert_eq!(got.result, Ok(Value::Number(42.0)));
        assert_eq!(got.coalesced_events, 0);
    }
    let stats = memo.stats();
    assert_eq!(stats.coalesced, 0, "{stats:?}");
    assert_eq!(
        counter.load(Ordering::SeqCst) as u64,
        stats.executed(),
        "every miss executes when coalescing is off: {stats:?}"
    );
}
