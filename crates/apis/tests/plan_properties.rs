//! Differential properties for the plan scheduler (see DESIGN.md §9): for
//! every valid chain, executing the lowered plan with 1 or N workers is
//! observably identical to the seed sequential executor — same result, same
//! findings, same final graph, same core event sequence. Plus a golden test
//! pinning the Plan JSON encoding.

use chatgraph_apis::{
    analysis, execute_chain_reference, registry, ApiChain, ChainError, ChainEvent,
    CollectingMonitor, ExecContext, Plan, Scheduler, Value,
};
use chatgraph_graph::generators::{knowledge_graph, molecule_database, KgParams, MoleculeParams};
use chatgraph_graph::Graph;
use chatgraph_support::prop::{check, Config};
use chatgraph_support::prop_assert_eq;
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};

/// Generator: a chain of 1..=max_len steps where every extension
/// type-checks (`can_extend`), so the whole chain is valid by construction.
fn random_valid_chain(rng: &mut StdRng, max_len: usize) -> ApiChain {
    let reg = registry::standard();
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    let len = rng.random_range(1..=max_len);
    let mut picked: Vec<String> = Vec::with_capacity(len);
    for _ in 0..len {
        let prev = picked.last().map(String::as_str);
        let legal: Vec<&String> = names
            .iter()
            .filter(|c| analysis::can_extend(&reg, prev, c, true))
            .collect();
        match legal.as_slice().choose(rng) {
            Some(name) => picked.push((*name).clone()),
            None => break,
        }
    }
    ApiChain::from_names(picked)
}

/// Everything an execution observably produces.
struct Observed {
    result: Result<Value, ChainError>,
    findings: Vec<(String, Value)>,
    core_events: Vec<ChainEvent>,
    graph: Graph,
}

fn observe(
    run: impl FnOnce(&mut ExecContext, &mut CollectingMonitor) -> Result<Value, ChainError>,
) -> Observed {
    // Small enough for a property test, rich enough to exercise the KG
    // detection APIs, the edit APIs' confirmation path, and the database
    // similarity APIs.
    let g = knowledge_graph(
        &KgParams {
            persons: 10,
            cities: 4,
            countries: 2,
            companies: 3,
            employment_rate: 0.5,
            knows_per_person: 1.0,
        },
        7,
    );
    // Tiny molecules: `graph_edit_distance_exact` is exponential in graph
    // size, and the differential check runs every chain four times.
    let db = molecule_database(
        3,
        &MoleculeParams { atoms: 8, rings: 1, double_bond_prob: 0.15 },
        5,
    );
    let mut ctx = ExecContext::new(g).with_database(db).with_seed(11);
    let mut mon = CollectingMonitor::new();
    let result = run(&mut ctx, &mut mon);
    let findings = std::mem::take(&mut ctx.findings);
    Observed {
        result,
        findings,
        core_events: mon.events.into_iter().filter(ChainEvent::is_core).collect(),
        graph: ctx.into_graph(),
    }
}

/// The shared differential check: reference executor vs the scheduler at
/// 1 and 4 workers, plus a warm-memo re-run at 4 workers.
fn check_plan_matches_reference(chain: &ApiChain) -> Result<(), String> {
    let reg = registry::standard();
    let reference = observe(|ctx, mon| execute_chain_reference(&reg, chain, ctx, mon));
    let sched4 = Scheduler::new(4);
    let runs = [
        ("1 worker", observe(|ctx, mon| {
            Scheduler::new(1).execute(&reg, chain, ctx, mon)
        })),
        ("4 workers", observe(|ctx, mon| {
            sched4.execute(&reg, chain, ctx, mon)
        })),
        ("4 workers, warm memo", observe(|ctx, mon| {
            sched4.execute(&reg, chain, ctx, mon)
        })),
    ];
    for (label, got) in runs {
        prop_assert_eq!(&got.result, &reference.result, "result differs ({label})");
        prop_assert_eq!(&got.findings, &reference.findings, "findings differ ({label})");
        prop_assert_eq!(
            &got.core_events,
            &reference.core_events,
            "core events differ ({label})"
        );
        prop_assert_eq!(&got.graph, &reference.graph, "final graph differs ({label})");
    }
    Ok(())
}

/// Determinism contract: N-worker plan execution is observation-equivalent
/// to the sequential seed executor on random valid chains.
#[test]
fn plan_execution_matches_reference_executor() {
    check(
        "plan_execution_matches_reference_executor",
        Config::default().with_cases(24),
        |rng, _size| random_valid_chain(rng, 4),
        check_plan_matches_reference,
    );
}

/// The canonical cleaning pipeline (paper Fig. 6) — barriers, confirmations
/// and mutations all in one chain — through the same differential check.
#[test]
fn cleaning_pipeline_matches_reference() {
    let chain = ApiChain::from_names([
        "detect_incorrect_edges",
        "remove_edges",
        "detect_missing_edges",
        "add_edges",
    ]);
    check_plan_matches_reference(&chain).unwrap();
}

/// A wide read-only chain — the maximally parallel shape.
#[test]
fn parallel_reads_match_reference() {
    let chain = ApiChain::from_names([
        "node_count",
        "edge_count",
        "graph_density",
        "detect_communities",
        "generate_report",
    ]);
    check_plan_matches_reference(&chain).unwrap();
}

/// Soundness of the interference audit: plans produced by `Plan::build`
/// never trip CG016 — the scheduler's barrier classification already
/// serializes every conflicting effect, and the audit independently
/// re-proves that on each plan. CG017 likewise stays silent because
/// findings-readers are classified as barriers (hence not memoizable).
#[test]
fn audit_never_rejects_built_plans() {
    let reg = registry::standard();
    check(
        "audit_never_rejects_built_plans",
        Config::default().with_cases(48),
        |rng, _size| random_valid_chain(rng, 6),
        |chain| {
            let plan = Plan::build(chain, &reg).map_err(|e| e.to_string())?;
            let d = analysis::audit_plan(&plan);
            prop_assert_eq!(d.items.len(), 0, "audit findings: {}", d.render_text());
            Ok(())
        },
    );
}

/// Golden test: the Plan JSON encoding for the cleaning chain is pinned, so
/// accidental changes to the IR (field set, dependency edges, barrier
/// classification) show up as a readable diff.
#[test]
fn plan_json_encoding_is_stable() {
    let reg = registry::standard();
    let chain = ApiChain::from_names([
        "node_count",
        "detect_incorrect_edges",
        "remove_edges",
        "generate_report",
    ]);
    let plan = Plan::build(&chain, &reg).unwrap();
    let got = chatgraph_support::json::to_string(&plan);
    if std::env::var_os("CHATGRAPH_UPDATE_GOLDEN").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden_plan.json");
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = include_str!("golden_plan.json").trim();
    assert_eq!(got, want, "Plan JSON drifted from tests/golden_plan.json");
}
