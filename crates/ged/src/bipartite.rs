//! Assignment-based GED approximation (Riesen–Bunke style).
//!
//! Builds the classic `(n1+n2) × (n1+n2)` cost matrix — substitutions in the
//! upper-left block, deletions/insertions on diagonal blocks — solves it with
//! the Hungarian algorithm, and then *executes* the resulting node mapping to
//! obtain the exact cost of the induced edit path, which is a true upper
//! bound on GED. A cheap label-multiset lower bound is also provided.

use crate::cost::CostModel;
use crate::hungarian::hungarian;
use chatgraph_graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// Output of [`approx_ged`].
#[derive(Debug, Clone)]
pub struct GedApproximation {
    /// Cost of the optimal node assignment in the Riesen–Bunke matrix
    /// (a heuristic estimate; neither bound in general).
    pub assignment_cost: f64,
    /// Exact cost of the edit path induced by the assignment — an upper
    /// bound on the true GED.
    pub upper_bound: f64,
    /// Label-multiset lower bound on the true GED.
    pub lower_bound: f64,
    /// For each live node of `g1` (in `node_ids` order), its image in `g2`
    /// (`None` = deleted).
    pub mapping: Vec<(NodeId, Option<NodeId>)>,
}

fn incident_labels(g: &Graph, v: NodeId) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    if g.is_directed() {
        // Direction matters: an edge-label multiset that conflates in- and
        // out-edges would rate a reversed chain identical to the original.
        for (_, e) in g.neighbors(v) {
            // Edges yielded by a live neighbor walk always resolve; "" keeps
            // the multiset total even if that invariant ever slips.
            *out.entry(format!("out:{}", g.edge_label(e).unwrap_or("")))
                .or_default() += 1;
        }
        for (_, e) in g.in_neighbors(v) {
            *out.entry(format!("in:{}", g.edge_label(e).unwrap_or("")))
                .or_default() += 1;
        }
    } else {
        for (_, e) in g.undirected_neighbors(v) {
            *out.entry(g.edge_label(e).unwrap_or("").to_owned())
                .or_default() += 1;
        }
    }
    out
}

/// Edge from `a` to `b`, honouring direction for directed graphs.
fn edge_between(g: &Graph, a: NodeId, b: NodeId) -> Option<chatgraph_graph::EdgeId> {
    if g.is_directed() {
        g.find_edge(a, b)
    } else {
        g.find_edge(a, b).or_else(|| g.find_edge(b, a))
    }
}

fn multiset_common(a: &BTreeMap<String, usize>, b: &BTreeMap<String, usize>) -> usize {
    a.iter()
        .map(|(k, &ca)| ca.min(b.get(k).copied().unwrap_or(0)))
        .sum()
}

/// Estimated cost of aligning the incident-edge environments of two nodes.
/// Halved because every edge is shared by two endpoints.
fn edge_env_cost(g1: &Graph, u: NodeId, g2: &Graph, v: NodeId, cost: &CostModel) -> f64 {
    let a = incident_labels(g1, u);
    let b = incident_labels(g2, v);
    let common = multiset_common(&a, &b);
    let da: usize = a.values().sum();
    let db: usize = b.values().sum();
    let unmatched_a = da - common;
    let unmatched_b = db - common;
    let subs = unmatched_a.min(unmatched_b);
    let dels = unmatched_a - subs;
    let inss = unmatched_b - subs;
    0.5 * (subs as f64 * cost.edge_sub.min(cost.edge_del + cost.edge_ins)
        + dels as f64 * cost.edge_del
        + inss as f64 * cost.edge_ins)
}

/// Label-multiset lower bound on GED: a relaxation that ignores structure
/// and only counts unavoidable node and edge label mismatches.
pub fn lower_bound(g1: &Graph, g2: &Graph, cost: &CostModel) -> f64 {
    let count = |g: &Graph, node: bool| -> BTreeMap<String, usize> {
        let mut m = BTreeMap::new();
        if node {
            for v in g.node_ids() {
                *m.entry(g.node_label(v).unwrap_or("").to_owned()).or_default() += 1;
            }
        } else {
            for e in g.edge_ids() {
                *m.entry(g.edge_label(e).unwrap_or("").to_owned()).or_default() += 1;
            }
        }
        m
    };
    let bound = |a: &BTreeMap<String, usize>,
                 b: &BTreeMap<String, usize>,
                 sub: f64,
                 del: f64,
                 ins: f64| {
        let ta: usize = a.values().sum();
        let tb: usize = b.values().sum();
        let common = multiset_common(a, b);
        let ua = ta - common;
        let ub = tb - common;
        let subs = ua.min(ub);
        let dels = ua - subs;
        let inss = ub - subs;
        subs as f64 * sub.min(del + ins) + dels as f64 * del + inss as f64 * ins
    };
    bound(
        &count(g1, true),
        &count(g2, true),
        cost.node_sub,
        cost.node_del,
        cost.node_ins,
    ) + bound(
        &count(g1, false),
        &count(g2, false),
        cost.edge_sub,
        cost.edge_del,
        cost.edge_ins,
    )
}

/// Exact cost of the edit path induced by a node mapping.
///
/// `mapping` pairs each live `g1` node with its `g2` image or `None`
/// (deletion); `g2` nodes missing from the image set are insertions.
pub fn induced_cost(
    g1: &Graph,
    g2: &Graph,
    mapping: &[(NodeId, Option<NodeId>)],
    cost: &CostModel,
) -> f64 {
    let mut total = 0.0;
    let mut image: BTreeMap<NodeId, NodeId> = BTreeMap::new(); // g1 -> g2
    for &(u, img) in mapping {
        match img {
            Some(v) => {
                total += cost.node_relabel(
                    g1.node_label(u).unwrap_or(""),
                    g2.node_label(v).unwrap_or(""),
                );
                image.insert(u, v);
            }
            None => total += cost.node_del,
        }
    }
    let used: std::collections::BTreeSet<NodeId> = image.values().copied().collect();
    // Inserted nodes.
    for v in g2.node_ids() {
        if !used.contains(&v) {
            total += cost.node_ins;
        }
    }
    // Edges of g1: deleted if an endpoint is deleted or the image edge is
    // absent; substituted otherwise.
    for e in g1.edge_ids() {
        // edge_ids only yields live edges; skip rather than panic if not.
        let Ok((a, b)) = g1.edge_endpoints(e) else { continue };
        match (image.get(&a), image.get(&b)) {
            (Some(&ia), Some(&ib)) => {
                let img_edge = edge_between(g2, ia, ib);
                match img_edge {
                    Some(e2) => {
                        total += cost.edge_relabel(
                            g1.edge_label(e).unwrap_or(""),
                            g2.edge_label(e2).unwrap_or(""),
                        )
                    }
                    None => total += cost.edge_del,
                }
            }
            _ => total += cost.edge_del,
        }
    }
    // Edges of g2 not covered by any g1 edge image are insertions.
    for e2 in g2.edge_ids() {
        let Ok((a2, b2)) = g2.edge_endpoints(e2) else { continue };
        let covered = if used.contains(&a2) && used.contains(&b2) {
            // find preimages
            let pa = image.iter().find(|(_, &v)| v == a2).map(|(&u, _)| u);
            let pb = image.iter().find(|(_, &v)| v == b2).map(|(&u, _)| u);
            match (pa, pb) {
                (Some(pa), Some(pb)) => edge_between(g1, pa, pb).is_some(),
                _ => false,
            }
        } else {
            false
        };
        if !covered {
            total += cost.edge_ins;
        }
    }
    total
}

/// Approximates GED between two graphs via bipartite assignment.
pub fn approx_ged(g1: &Graph, g2: &Graph, cost: &CostModel) -> GedApproximation {
    let n1_nodes: Vec<NodeId> = g1.node_ids().collect();
    let n2_nodes: Vec<NodeId> = g2.node_ids().collect();
    let (n1, n2) = (n1_nodes.len(), n2_nodes.len());
    let dim = n1 + n2;
    // A large-but-finite stand-in for infinity keeps the Hungarian potentials
    // finite while never being chosen when a feasible cell exists.
    let big = 1e9;
    let mut m = vec![vec![0.0f64; dim]; dim];
    for i in 0..n1 {
        for j in 0..n2 {
            m[i][j] = cost.node_relabel(
                g1.node_label(n1_nodes[i]).unwrap_or(""),
                g2.node_label(n2_nodes[j]).unwrap_or(""),
            ) + edge_env_cost(g1, n1_nodes[i], g2, n2_nodes[j], cost);
        }
        for k in 0..n1 {
            m[i][n2 + k] = if i == k {
                cost.node_del
                    + 0.5 * g1.total_degree(n1_nodes[i]) as f64 * cost.edge_del
            } else {
                big
            };
        }
    }
    for k in 0..n2 {
        for j in 0..n2 {
            m[n1 + k][j] = if j == k {
                cost.node_ins
                    + 0.5 * g2.total_degree(n2_nodes[j]) as f64 * cost.edge_ins
            } else {
                big
            };
        }
        // lower-right block stays 0
    }
    let (assignment, assignment_cost) = hungarian(&m);
    let mapping: Vec<(NodeId, Option<NodeId>)> = (0..n1)
        .map(|i| {
            let j = assignment[i];
            if j < n2 {
                (n1_nodes[i], Some(n2_nodes[j]))
            } else {
                (n1_nodes[i], None)
            }
        })
        .collect();
    let upper_bound = induced_cost(g1, g2, &mapping, cost);
    GedApproximation {
        assignment_cost,
        upper_bound,
        lower_bound: lower_bound(g1, g2, cost),
        mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::GraphBuilder;

    fn tri(labels: [&str; 3]) -> Graph {
        GraphBuilder::undirected()
            .node("a", labels[0])
            .node("b", labels[1])
            .node("c", labels[2])
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .build()
    }

    #[test]
    fn identical_graphs_have_zero_ged() {
        let g = tri(["C", "N", "O"]);
        let approx = approx_ged(&g, &g, &CostModel::uniform());
        assert_eq!(approx.upper_bound, 0.0);
        assert_eq!(approx.lower_bound, 0.0);
        for (u, v) in &approx.mapping {
            assert_eq!(Some(*u), *v);
        }
    }

    #[test]
    fn single_relabel_costs_one() {
        let g1 = tri(["C", "N", "O"]);
        let g2 = tri(["C", "N", "S"]);
        let approx = approx_ged(&g1, &g2, &CostModel::uniform());
        assert_eq!(approx.upper_bound, 1.0);
        assert_eq!(approx.lower_bound, 1.0);
    }

    #[test]
    fn size_mismatch_bounds() {
        let g1 = tri(["C", "C", "C"]);
        let g2 = GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "C")
            .edge("a", "b", "-")
            .build();
        let approx = approx_ged(&g1, &g2, &CostModel::uniform());
        // Delete one node and its two incident edges: GED = 3.
        assert_eq!(approx.upper_bound, 3.0);
        assert!(approx.lower_bound <= approx.upper_bound);
        assert!(approx.lower_bound >= 2.0); // ≥ 1 node + ≥ 1 edge
    }

    #[test]
    fn lower_bound_never_exceeds_upper() {
        use chatgraph_graph::generators::{molecule, MoleculeParams};
        for seed in 0..8 {
            let g1 = molecule(&MoleculeParams { atoms: 10, rings: 1, double_bond_prob: 0.2 }, seed);
            let g2 = molecule(&MoleculeParams { atoms: 12, rings: 2, double_bond_prob: 0.2 }, seed + 100);
            let approx = approx_ged(&g1, &g2, &CostModel::uniform());
            assert!(
                approx.lower_bound <= approx.upper_bound + 1e-9,
                "seed {seed}: lb {} > ub {}",
                approx.lower_bound,
                approx.upper_bound
            );
        }
    }

    #[test]
    fn symmetry_of_bounds_under_uniform_costs() {
        let g1 = tri(["C", "N", "O"]);
        let g2 = GraphBuilder::undirected()
            .node("a", "C")
            .node("b", "N")
            .edge("a", "b", "-")
            .build();
        let a12 = approx_ged(&g1, &g2, &CostModel::uniform());
        let a21 = approx_ged(&g2, &g1, &CostModel::uniform());
        assert_eq!(a12.lower_bound, a21.lower_bound);
        assert_eq!(a12.upper_bound, a21.upper_bound);
    }

    #[test]
    fn empty_graph_cases() {
        let empty = Graph::undirected();
        let g = tri(["C", "C", "C"]);
        let approx = approx_ged(&empty, &g, &CostModel::uniform());
        assert_eq!(approx.upper_bound, 6.0); // 3 node ins + 3 edge ins
        let both = approx_ged(&empty, &empty, &CostModel::uniform());
        assert_eq!(both.upper_bound, 0.0);
    }

    #[test]
    fn induced_cost_of_explicit_mapping() {
        let g1 = tri(["C", "N", "O"]);
        let g2 = tri(["C", "N", "O"]);
        let ids1: Vec<NodeId> = g1.node_ids().collect();
        let ids2: Vec<NodeId> = g2.node_ids().collect();
        // Perverse mapping: swap N and O images → 2 relabels, edges survive.
        let mapping = vec![
            (ids1[0], Some(ids2[0])),
            (ids1[1], Some(ids2[2])),
            (ids1[2], Some(ids2[1])),
        ];
        let c = induced_cost(&g1, &g2, &mapping, &CostModel::uniform());
        assert_eq!(c, 2.0);
    }
}
