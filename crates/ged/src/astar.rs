//! Exact graph edit distance by A* search.
//!
//! Explores node mappings in a fixed order of `g1`'s nodes; each state maps
//! the next `g1` node to an unused `g2` node or deletes it. Edge costs are
//! charged incrementally against already-processed nodes, and a label-multiset
//! heuristic over the remaining nodes keeps the search admissible.
//!
//! Exponential in the worst case — intended for the small graphs where exact
//! GED is needed (API chains, unit tests, approximation-quality experiments).

use crate::cost::CostModel;
use chatgraph_graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct State {
    f: f64,
    g: f64,
    depth: usize,
    /// Image of g1 node `order[i]` for `i < depth`; `None` = deleted.
    mapping: Vec<Option<usize>>,
    used: u64, // bitset over g2 node indices (≤ 64 nodes)
    /// Goal states are re-queued with the full completion cost folded into
    /// `f` before they may be returned: the heuristic underestimates the
    /// completion (it ignores inserted edges), so returning on first goal
    /// pop would not be optimal.
    finalized: bool,
}

impl PartialEq for State {
    fn eq(&self, other: &Self) -> bool {
        self.f == other.f
    }
}
impl Eq for State {}
impl PartialOrd for State {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for State {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on f (BinaryHeap is a max-heap, so reverse), preferring
        // deeper states on ties to reach goals sooner.
        other
            .f
            .total_cmp(&self.f)
            .then(self.depth.cmp(&other.depth))
    }
}

/// Exact GED with an expansion budget.
///
/// Returns `None` if either graph has more than 64 nodes or the budget is
/// exhausted before the optimum is proven.
pub fn exact_ged_with_limit(
    g1: &Graph,
    g2: &Graph,
    cost: &CostModel,
    max_expansions: usize,
) -> Option<f64> {
    let nodes1: Vec<NodeId> = g1.node_ids().collect();
    let nodes2: Vec<NodeId> = g2.node_ids().collect();
    let (n1, n2) = (nodes1.len(), nodes2.len());
    if n2 > 64 || n1 > 64 {
        return None;
    }
    let labels1: Vec<&str> = nodes1.iter().map(|&v| g1.node_label(v).expect("live")).collect();
    let labels2: Vec<&str> = nodes2.iter().map(|&v| g2.node_label(v).expect("live")).collect();

    // Process high-degree g1 nodes first: their edge constraints prune most.
    let mut order: Vec<usize> = (0..n1).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(g1.total_degree(nodes1[i])));

    let h = |depth: usize, used: u64| -> f64 {
        // Node-only label-multiset lower bound over the unprocessed frontier.
        let mut rem1: std::collections::BTreeMap<&str, i64> = Default::default();
        for &i in &order[depth..] {
            *rem1.entry(labels1[i]).or_default() += 1;
        }
        let mut rem2: std::collections::BTreeMap<&str, i64> = Default::default();
        let mut c2 = 0i64;
        for (j, label) in labels2.iter().enumerate() {
            if used & (1 << j) == 0 {
                *rem2.entry(label).or_default() += 1;
                c2 += 1;
            }
        }
        let c1 = (n1 - depth) as i64;
        let common: i64 = rem1
            .iter()
            .map(|(k, &a)| a.min(rem2.get(k).copied().unwrap_or(0)))
            .sum();
        let ua = c1 - common;
        let ub = c2 - common;
        let subs = ua.min(ub);
        let dels = ua - subs;
        let inss = ub - subs;
        subs as f64 * cost.node_sub.min(cost.node_del + cost.node_ins)
            + dels as f64 * cost.node_del
            + inss as f64 * cost.node_ins
    };

    // Cost of mapping order[depth] -> j (or deletion when j == None), charged
    // against the already-mapped prefix.
    let step_cost = |depth: usize, mapping: &[Option<usize>], img: Option<usize>| -> f64 {
        let i = order[depth];
        let u = nodes1[i];
        let mut c = match img {
            Some(j) => cost.node_relabel(labels1[i], labels2[j]),
            None => cost.node_del,
        };
        // Directed graphs must distinguish u→u' from u'→u; undirected graphs
        // must not. Compare each orientation separately for directed pairs.
        let oriented_pairs: &[(bool, bool)] = if g1.is_directed() && g2.is_directed() {
            &[(false, false), (true, true)]
        } else {
            &[(false, false)]
        };
        for (d, &m) in mapping.iter().enumerate().take(depth) {
            let up = nodes1[order[d]];
            for &(rev1, _rev2) in oriented_pairs {
                let e1 = if g1.is_directed() && g2.is_directed() {
                    if rev1 {
                        g1.find_edge(up, u)
                    } else {
                        g1.find_edge(u, up)
                    }
                } else {
                    g1.find_edge(u, up).or_else(|| g1.find_edge(up, u))
                };
                match img {
                    None => {
                        if e1.is_some() {
                            c += cost.edge_del;
                        }
                    }
                    Some(j) => {
                        let v = nodes2[j];
                        let e2 = m.and_then(|mj| {
                            let vp = nodes2[mj];
                            if g1.is_directed() && g2.is_directed() {
                                if rev1 {
                                    g2.find_edge(vp, v)
                                } else {
                                    g2.find_edge(v, vp)
                                }
                            } else {
                                g2.find_edge(v, vp).or_else(|| g2.find_edge(vp, v))
                            }
                        });
                        match (e1, e2) {
                            (Some(e1), Some(e2)) => {
                                c += cost.edge_relabel(
                                    g1.edge_label(e1).expect("live"),
                                    g2.edge_label(e2).expect("live"),
                                )
                            }
                            (Some(_), None) => c += cost.edge_del,
                            (None, Some(_)) => c += cost.edge_ins,
                            (None, None) => {}
                        }
                    }
                }
            }
        }
        c
    };

    // Terminal completion: insert all unused g2 nodes and every g2 edge
    // touching an unused node.
    let completion = |used: u64| -> f64 {
        let mut c = 0.0;
        for j in 0..n2 {
            if used & (1 << j) == 0 {
                c += cost.node_ins;
            }
        }
        for e in g2.edge_ids() {
            let (a, b) = g2.edge_endpoints(e).expect("live");
            let ja = nodes2.iter().position(|&v| v == a).expect("present");
            let jb = nodes2.iter().position(|&v| v == b).expect("present");
            if used & (1 << ja) == 0 || used & (1 << jb) == 0 {
                c += cost.edge_ins;
            }
        }
        c
    };

    let mut heap = BinaryHeap::new();
    heap.push(State {
        f: h(0, 0),
        g: 0.0,
        depth: 0,
        mapping: Vec::new(),
        used: 0,
        finalized: false,
    });
    let mut expansions = 0usize;
    while let Some(state) = heap.pop() {
        if state.depth == n1 {
            if state.finalized {
                return Some(state.g);
            }
            let total = state.g + completion(state.used);
            heap.push(State {
                f: total,
                g: total,
                finalized: true,
                ..state
            });
            continue;
        }
        expansions += 1;
        if expansions > max_expansions {
            return None;
        }
        // Children: map to each unused g2 node, or delete.
        for j in 0..n2 {
            if state.used & (1 << j) != 0 {
                continue;
            }
            let extra = step_cost(state.depth, &state.mapping, Some(j));
            let mut mapping = state.mapping.clone();
            mapping.push(Some(j));
            let used = state.used | (1 << j);
            let g_cost = state.g + extra;
            heap.push(State {
                f: g_cost + h(state.depth + 1, used),
                g: g_cost,
                depth: state.depth + 1,
                mapping,
                used,
                finalized: false,
            });
        }
        let extra = step_cost(state.depth, &state.mapping, None);
        let mut mapping = state.mapping.clone();
        mapping.push(None);
        let g_cost = state.g + extra;
        heap.push(State {
            f: g_cost + h(state.depth + 1, state.used),
            g: g_cost,
            depth: state.depth + 1,
            mapping,
            used: state.used,
            finalized: false,
        });
    }
    // n1 == 0: pure insertion of g2.
    Some(completion(0))
}

/// Exact GED with a generous default expansion budget (2 million states).
pub fn exact_ged(g1: &Graph, g2: &Graph, cost: &CostModel) -> Option<f64> {
    exact_ged_with_limit(g1, g2, cost, 2_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::approx_ged;
    use chatgraph_graph::GraphBuilder;

    fn path(labels: &[&str]) -> Graph {
        let mut b = GraphBuilder::undirected();
        for (i, l) in labels.iter().enumerate() {
            b = b.node(format!("n{i}"), *l);
        }
        for i in 1..labels.len() {
            b = b.edge(format!("n{}", i - 1), format!("n{i}"), "-");
        }
        b.build()
    }

    #[test]
    fn identical_graphs_cost_zero() {
        let g = path(&["A", "B", "C"]);
        assert_eq!(exact_ged(&g, &g, &CostModel::uniform()), Some(0.0));
    }

    #[test]
    fn single_relabel() {
        let g1 = path(&["A", "B", "C"]);
        let g2 = path(&["A", "B", "D"]);
        assert_eq!(exact_ged(&g1, &g2, &CostModel::uniform()), Some(1.0));
    }

    #[test]
    fn node_insertion_with_edge() {
        let g1 = path(&["A", "B"]);
        let g2 = path(&["A", "B", "C"]);
        // insert node C + edge B-C
        assert_eq!(exact_ged(&g1, &g2, &CostModel::uniform()), Some(2.0));
    }

    #[test]
    fn edge_only_difference() {
        let line = path(&["A", "A", "A"]);
        let tri = GraphBuilder::undirected()
            .node("a", "A")
            .node("b", "A")
            .node("c", "A")
            .edge("a", "b", "-")
            .edge("b", "c", "-")
            .edge("c", "a", "-")
            .build();
        assert_eq!(exact_ged(&line, &tri, &CostModel::uniform()), Some(1.0));
    }

    #[test]
    fn empty_to_graph_is_pure_insertion() {
        let empty = Graph::undirected();
        let g = path(&["A", "B", "C"]);
        assert_eq!(exact_ged(&empty, &g, &CostModel::uniform()), Some(5.0));
        assert_eq!(exact_ged(&g, &empty, &CostModel::uniform()), Some(5.0));
    }

    #[test]
    fn symmetric_under_uniform_costs() {
        let g1 = path(&["A", "B", "C", "D"]);
        let g2 = GraphBuilder::undirected()
            .node("a", "A")
            .node("b", "C")
            .edge("a", "b", "x")
            .build();
        let d12 = exact_ged(&g1, &g2, &CostModel::uniform()).unwrap();
        let d21 = exact_ged(&g2, &g1, &CostModel::uniform()).unwrap();
        assert_eq!(d12, d21);
    }

    #[test]
    fn exact_within_bipartite_bounds() {
        use chatgraph_graph::generators::{molecule, MoleculeParams};
        let cost = CostModel::uniform();
        for seed in 0..6 {
            let p = MoleculeParams {
                atoms: 6,
                rings: 1,
                double_bond_prob: 0.2,
            };
            let g1 = molecule(&p, seed);
            let g2 = molecule(&p, seed + 50);
            let exact = exact_ged(&g1, &g2, &cost).expect("small graphs solve");
            let approx = approx_ged(&g1, &g2, &cost);
            assert!(
                approx.lower_bound <= exact + 1e-9,
                "seed {seed}: lb {} > exact {exact}",
                approx.lower_bound
            );
            assert!(
                exact <= approx.upper_bound + 1e-9,
                "seed {seed}: exact {exact} > ub {}",
                approx.upper_bound
            );
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g1 = path(&["A", "B", "C", "D", "E", "F"]);
        let g2 = path(&["F", "E", "D", "C", "B", "A"]);
        assert_eq!(exact_ged_with_limit(&g1, &g2, &CostModel::uniform(), 1), None);
    }

    #[test]
    fn weighted_costs_respected() {
        let g1 = path(&["A"]);
        let g2 = path(&["B"]);
        let cost = CostModel::node_weighted(5.0);
        // relabel (5) beats delete+insert (10)
        assert_eq!(exact_ged(&g1, &g2, &cost), Some(5.0));
    }
}
