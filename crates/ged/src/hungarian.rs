//! Minimum-cost assignment (Hungarian / Kuhn–Munkres algorithm).
//!
//! The potentials-based O(n³) formulation. Costs are `f64`; the matrix may be
//! rectangular with `rows ≤ cols` (every row is assigned a distinct column).

/// Solves the minimum-cost assignment problem.
///
/// `cost[r][c]` is the cost of assigning row `r` to column `c`. Requires
/// `rows ≤ cols` and a rectangular matrix. Returns `(assignment, total)`
/// where `assignment[r]` is the column chosen for row `r`.
///
/// # Panics
///
/// Panics if the matrix is ragged or has more rows than columns.
pub fn hungarian(cost: &[Vec<f64>]) -> (Vec<usize>, f64) {
    let n = cost.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let m = cost[0].len();
    assert!(
        cost.iter().all(|row| row.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(n <= m, "need rows <= cols (got {n} x {m})");

    const INF: f64 = f64::INFINITY;
    // 1-based potentials over rows (u) and columns (v); p[j] = row matched to
    // column j (0 = none). Standard e-maxx formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    let total = assignment
        .iter()
        .enumerate()
        .map(|(r, &c)| cost[r][c])
        .sum();
    (assignment, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        // Try all permutations of column subsets (rows <= 6 in tests).
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == cost.len() {
                *best = best.min(acc);
                return;
            }
            for c in 0..cost[0].len() {
                if !used[c] {
                    used[c] = true;
                    rec(cost, row + 1, used, acc + cost[row][c], best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, 0, &mut vec![false; cost[0].len()], 0.0, &mut best);
        best
    }

    #[test]
    fn empty_matrix() {
        let (a, t) = hungarian(&[]);
        assert!(a.is_empty());
        assert_eq!(t, 0.0);
    }

    #[test]
    fn identity_is_optimal_on_diagonal_zeros() {
        let cost = vec![
            vec![0.0, 5.0, 5.0],
            vec![5.0, 0.0, 5.0],
            vec![5.0, 5.0, 0.0],
        ];
        let (a, t) = hungarian(&cost);
        assert_eq!(a, vec![0, 1, 2]);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn classic_3x3() {
        // Known optimum: 1+2+3 = 6 via anti-diagonal-ish choice.
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let (_, t) = hungarian(&cost);
        assert_eq!(t, 5.0); // 1 + 2 + 2
        assert_eq!(t, brute_force(&cost));
    }

    #[test]
    fn rectangular_matrix_assigns_all_rows() {
        let cost = vec![vec![10.0, 1.0, 7.0, 8.0], vec![1.0, 10.0, 7.0, 8.0]];
        let (a, t) = hungarian(&cost);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(t, 2.0);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use chatgraph_support::rng::{RngExt, SeedableRng};
        let mut rng = chatgraph_support::rng::ChaCha12Rng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.random_range(1..=5usize);
            let m = rng.random_range(n..=6usize);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| (rng.random_range(0..100u32)) as f64 / 10.0).collect())
                .collect();
            let (a, t) = hungarian(&cost);
            // assignment is a valid injection
            let mut seen = std::collections::HashSet::new();
            for &c in &a {
                assert!(c < m);
                assert!(seen.insert(c), "column reused");
            }
            let bf = brute_force(&cost);
            assert!((t - bf).abs() < 1e-9, "hungarian {t} vs brute force {bf}");
        }
    }

    #[test]
    #[should_panic(expected = "rows <= cols")]
    fn too_many_rows_panics() {
        hungarian(&[vec![1.0], vec![2.0]]);
    }

    #[test]
    #[should_panic(expected = "rectangular")]
    fn ragged_matrix_panics() {
        hungarian(&[vec![1.0, 2.0], vec![2.0]]);
    }
}
