//! Edit-cost models.
//!
//! GED is parameterised by the cost of each primitive edit operation. The
//! uniform model (all ops cost 1, substitutions free when labels agree) is
//! what the paper's chain-matching loss uses; the weighted model lets the
//! similarity-search API bias node vs edge edits.


/// Costs for the six primitive edit operations.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of substituting a node whose label differs.
    pub node_sub: f64,
    /// Cost of deleting a node.
    pub node_del: f64,
    /// Cost of inserting a node.
    pub node_ins: f64,
    /// Cost of substituting an edge whose label differs.
    pub edge_sub: f64,
    /// Cost of deleting an edge.
    pub edge_del: f64,
    /// Cost of inserting an edge.
    pub edge_ins: f64,
}

chatgraph_support::impl_json_struct!(CostModel {
    node_sub,
    node_del,
    node_ins,
    edge_sub,
    edge_del,
    edge_ins,
});

impl Default for CostModel {
    fn default() -> Self {
        CostModel::uniform()
    }
}

impl CostModel {
    /// The uniform model: every operation costs 1.
    pub fn uniform() -> Self {
        CostModel {
            node_sub: 1.0,
            node_del: 1.0,
            node_ins: 1.0,
            edge_sub: 1.0,
            edge_del: 1.0,
            edge_ins: 1.0,
        }
    }

    /// A model that makes node edits `w` times as expensive as edge edits —
    /// useful when node identity matters more than wiring (API chains).
    pub fn node_weighted(w: f64) -> Self {
        CostModel {
            node_sub: w,
            node_del: w,
            node_ins: w,
            edge_sub: 1.0,
            edge_del: 1.0,
            edge_ins: 1.0,
        }
    }

    /// Cost of turning label `a` into label `b` on a node (0 when equal).
    pub fn node_relabel(&self, a: &str, b: &str) -> f64 {
        if a == b {
            0.0
        } else {
            self.node_sub
        }
    }

    /// Cost of turning label `a` into label `b` on an edge (0 when equal).
    pub fn edge_relabel(&self, a: &str, b: &str) -> f64 {
        if a == b {
            0.0
        } else {
            self.edge_sub
        }
    }

    /// Validates that all costs are non-negative and finite.
    pub fn is_valid(&self) -> bool {
        [
            self.node_sub,
            self.node_del,
            self.node_ins,
            self.edge_sub,
            self.edge_del,
            self.edge_ins,
        ]
        .iter()
        .all(|c| c.is_finite() && *c >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_are_one() {
        let c = CostModel::uniform();
        assert_eq!(c.node_sub, 1.0);
        assert_eq!(c.edge_ins, 1.0);
        assert!(c.is_valid());
    }

    #[test]
    fn relabel_is_free_when_labels_match() {
        let c = CostModel::uniform();
        assert_eq!(c.node_relabel("x", "x"), 0.0);
        assert_eq!(c.node_relabel("x", "y"), 1.0);
        assert_eq!(c.edge_relabel("a", "a"), 0.0);
        assert_eq!(c.edge_relabel("a", "b"), 1.0);
    }

    #[test]
    fn node_weighted_scales_nodes_only() {
        let c = CostModel::node_weighted(3.0);
        assert_eq!(c.node_del, 3.0);
        assert_eq!(c.edge_del, 1.0);
    }

    #[test]
    fn invalid_costs_detected() {
        let mut c = CostModel::uniform();
        c.node_del = -1.0;
        assert!(!c.is_valid());
        c.node_del = f64::NAN;
        assert!(!c.is_valid());
    }
}
