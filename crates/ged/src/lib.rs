//! # chatgraph-ged
//!
//! Graph edit distance (GED) substrate for ChatGraph's API chain-oriented
//! finetuning (paper §II-C).
//!
//! The finetuning module scores a *generated* API chain against *ground-truth*
//! chains with a **node matching-based loss** (paper Definition 1):
//!
//! ```text
//! min over matchings M of   X + α·Y
//! ```
//!
//! where `X` is the graph edit distance between the two chains under `M` and
//! `Y` penalises violations of one-to-one matching. This crate provides the
//! machinery:
//!
//! * [`mod@hungarian`] — the O(n³) Hungarian algorithm for minimum-cost
//!   assignment, the workhorse of bipartite GED approximation.
//! * [`cost`] — pluggable edit-cost models (uniform by default).
//! * [`bipartite`] — the Riesen–Bunke assignment-based GED approximation,
//!   yielding a lower bound and, from the induced edit path, an upper bound.
//! * [`astar`] — exact GED by A* search for small graphs (API chains are
//!   small, so exact evaluation is feasible in tests and experiments).
//! * [`mod@matching_loss`] — Definition 1 itself, plus the min-over-equivalent
//!   ground truths reduction used by search-based prediction.

pub mod astar;
pub mod bipartite;
pub mod cost;
pub mod hungarian;
pub mod matching_loss;

pub use astar::{exact_ged, exact_ged_with_limit};
pub use bipartite::{approx_ged, GedApproximation};
pub use cost::CostModel;
pub use hungarian::hungarian;
pub use matching_loss::{matching_loss, min_matching_loss, MatchingLoss};
