//! The node matching-based loss (paper §II-C, Definition 1).
//!
//! For a generated API chain `C` and a ground-truth chain `C'`, the loss is
//!
//! ```text
//! L(C, C') = min over matchings M of  X + α·Y
//! ```
//!
//! * `X` — the graph edit distance between `C` and `C'` induced by `M`.
//! * `Y` — the one-to-one regulariser
//!   `Σ_u (1 − Σ_v M_uv)² + Σ_v (1 − Σ_u M_uv)²`: with a hard matching each
//!   unmatched node of either chain (one mapped to ε, i.e. deleted or
//!   inserted) contributes exactly 1.
//! * `α` — a balance weight.
//!
//! The minimisation over `M` is performed by the bipartite assignment of
//! [`crate::bipartite::approx_ged`]; for the small graphs that API chains are,
//! the assignment solution is exact or near-exact, and the same Hungarian
//! machinery is what ref \[14\] of the paper uses.
//!
//! Because a question may have *several* equivalent ground-truth chains, the
//! search-based prediction scores a candidate by the **minimum** loss over
//! all ground truths — [`min_matching_loss`].

use crate::bipartite::approx_ged;
use crate::cost::CostModel;
use chatgraph_graph::{Graph, NodeId};

/// Decomposed node matching-based loss.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchingLoss {
    /// `X`: the (assignment-induced) graph edit distance.
    pub edit_distance: f64,
    /// `Y`: the one-to-one matching regulariser.
    pub regularizer: f64,
    /// `α` used.
    pub alpha: f64,
    /// `X + α·Y`.
    pub total: f64,
    /// The matching used, as `(node of C, matched node of C' or None)`.
    pub matching: Vec<(NodeId, Option<NodeId>)>,
}

chatgraph_support::impl_json_struct!(MatchingLoss {
    edit_distance,
    regularizer,
    alpha,
    total,
    matching,
});

/// Computes the node matching-based loss between a generated chain and one
/// ground-truth chain (both encoded as graphs).
pub fn matching_loss(generated: &Graph, truth: &Graph, alpha: f64, cost: &CostModel) -> MatchingLoss {
    let approx = approx_ged(generated, truth, cost);
    let deleted = approx.mapping.iter().filter(|(_, v)| v.is_none()).count();
    let matched = approx.mapping.len() - deleted;
    let inserted = truth.node_count() - matched;
    // Hard matchings: each ε-mapped node contributes (1-0)² = 1.
    let regularizer = (deleted + inserted) as f64;
    let edit_distance = approx.upper_bound;
    MatchingLoss {
        edit_distance,
        regularizer,
        alpha,
        total: edit_distance + alpha * regularizer,
        matching: approx.mapping,
    }
}

/// The minimum loss of `generated` over several equivalent ground truths,
/// with the index of the closest one. Returns `None` when `truths` is empty.
pub fn min_matching_loss(
    generated: &Graph,
    truths: &[Graph],
    alpha: f64,
    cost: &CostModel,
) -> Option<(usize, MatchingLoss)> {
    truths
        .iter()
        .enumerate()
        .map(|(i, t)| (i, matching_loss(generated, t, alpha, cost)))
        .min_by(|a, b| a.1.total.total_cmp(&b.1.total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatgraph_graph::GraphBuilder;

    /// Encodes an API chain as a path graph of API-name-labelled nodes.
    fn chain(apis: &[&str]) -> Graph {
        let mut b = GraphBuilder::directed();
        for (i, a) in apis.iter().enumerate() {
            b = b.node(format!("s{i}"), *a);
        }
        for i in 1..apis.len() {
            b = b.edge(format!("s{}", i - 1), format!("s{i}"), "next");
        }
        b.build()
    }

    #[test]
    fn identical_chains_have_zero_loss() {
        let c = chain(&["load", "communities", "report"]);
        let l = matching_loss(&c, &c, 0.5, &CostModel::uniform());
        assert_eq!(l.total, 0.0);
        assert_eq!(l.edit_distance, 0.0);
        assert_eq!(l.regularizer, 0.0);
    }

    #[test]
    fn loss_is_nonnegative_and_increases_with_divergence() {
        let truth = chain(&["load", "communities", "report"]);
        let close = chain(&["load", "communities", "summary"]);
        let far = chain(&["load", "toxicity"]);
        let cost = CostModel::uniform();
        let l_close = matching_loss(&close, &truth, 0.5, &cost);
        let l_far = matching_loss(&far, &truth, 0.5, &cost);
        assert!(l_close.total > 0.0);
        assert!(l_far.total > l_close.total);
    }

    #[test]
    fn regularizer_counts_unmatched_nodes() {
        let truth = chain(&["a", "b", "c"]);
        let short = chain(&["a"]);
        let l = matching_loss(&short, &truth, 1.0, &CostModel::uniform());
        // Two truth nodes are unmatched insertions.
        assert_eq!(l.regularizer, 2.0);
        assert_eq!(l.total, l.edit_distance + 2.0);
    }

    #[test]
    fn alpha_scales_regularizer_only() {
        let truth = chain(&["a", "b"]);
        let gen = chain(&["a"]);
        let cost = CostModel::uniform();
        let l0 = matching_loss(&gen, &truth, 0.0, &cost);
        let l2 = matching_loss(&gen, &truth, 2.0, &cost);
        assert_eq!(l0.total, l0.edit_distance);
        assert_eq!(l2.total, l2.edit_distance + 2.0 * l2.regularizer);
        assert_eq!(l0.edit_distance, l2.edit_distance);
    }

    #[test]
    fn min_loss_picks_closest_equivalent_truth() {
        let truths = vec![
            chain(&["load", "toxicity", "report"]),
            chain(&["load", "communities", "report"]),
        ];
        let gen = chain(&["load", "communities", "report"]);
        let (idx, l) = min_matching_loss(&gen, &truths, 0.5, &CostModel::uniform()).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(l.total, 0.0);
    }

    #[test]
    fn empty_truth_set_yields_none() {
        let gen = chain(&["a"]);
        assert!(min_matching_loss(&gen, &[], 0.5, &CostModel::uniform()).is_none());
    }

    #[test]
    fn loss_is_symmetric_enough_for_identical_sizes() {
        let a = chain(&["x", "y", "z"]);
        let b = chain(&["x", "q", "z"]);
        let cost = CostModel::uniform();
        let lab = matching_loss(&a, &b, 0.5, &cost);
        let lba = matching_loss(&b, &a, 0.5, &cost);
        assert_eq!(lab.total, lba.total);
    }
}
