//! The end-to-end text embedder.

use crate::hashing::hash_feature;
use crate::tfidf::TfIdf;
use crate::tokenizer::features;
use crate::vector::Vector;

/// Embedder configuration (exposed in ChatGraph's configuration panel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedderConfig {
    /// Output dimensionality.
    pub dim: usize,
    /// Character n-gram size (0 disables subword features).
    pub char_ngram: usize,
    /// Weight features by IDF statistics fit on a corpus.
    pub use_tfidf: bool,
}

chatgraph_support::impl_json_struct!(EmbedderConfig { dim, char_ngram, use_tfidf });

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            dim: 128,
            char_ngram: 3,
            use_tfidf: true,
        }
    }
}

/// Deterministic feature-hashing text embedder.
///
/// ```
/// use chatgraph_embed::{Embedder, EmbedderConfig};
///
/// let mut e = Embedder::new(EmbedderConfig::default());
/// e.fit(["detect communities in a social network", "predict molecule toxicity"]);
/// let a = e.embed("find the communities of this social graph");
/// let b = e.embed("how toxic is this molecule");
/// let c = e.embed("community detection for social networks");
/// assert!(a.cosine(&c) < a.cosine(&b));
/// ```
#[derive(Debug, Clone)]
pub struct Embedder {
    config: EmbedderConfig,
    tfidf: TfIdf,
}

chatgraph_support::impl_json_struct!(Embedder { config, tfidf });

impl Embedder {
    /// Creates an embedder; call [`Embedder::fit`] before embedding if
    /// `use_tfidf` is set (unfit TF-IDF weights all tokens equally).
    pub fn new(config: EmbedderConfig) -> Self {
        assert!(config.dim > 0, "embedding dimension must be positive");
        Embedder {
            config,
            tfidf: TfIdf::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EmbedderConfig {
        &self.config
    }

    /// Fits IDF statistics on a corpus of documents.
    pub fn fit<I, S>(&mut self, corpus: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.tfidf = TfIdf::fit(
            corpus
                .into_iter()
                .map(|doc| features(doc.as_ref(), self.config.char_ngram)),
        );
    }

    /// Embeds a text into a unit-norm vector (the zero vector for texts with
    /// no features).
    pub fn embed(&self, text: &str) -> Vector {
        let mut v = Vector::zeros(self.config.dim);
        for f in features(text, self.config.char_ngram) {
            let (idx, sign) = hash_feature(&f, self.config.dim);
            let w = if self.config.use_tfidf {
                self.tfidf.idf(&f)
            } else {
                1.0
            };
            v.0[idx] += sign * w;
        }
        v.normalize();
        v
    }

    /// Embeds many texts.
    pub fn embed_all<I, S>(&self, texts: I) -> Vec<Vector>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        texts.into_iter().map(|t| self.embed(t.as_ref())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> Embedder {
        let mut e = Embedder::new(EmbedderConfig::default());
        e.fit([
            "detect communities in a social network",
            "check whether the graph is connected",
            "predict the toxicity of a molecule",
            "predict the solubility of a molecule",
            "search for similar molecules in a database",
            "clean the knowledge graph by fixing incorrect edges",
        ]);
        e
    }

    #[test]
    fn embeddings_are_unit_norm_and_deterministic() {
        let e = embedder();
        let v1 = e.embed("find communities");
        let v2 = e.embed("find communities");
        assert_eq!(v1, v2);
        assert!((v1.norm() - 1.0).abs() < 1e-5);
        assert_eq!(v1.dim(), 128);
    }

    #[test]
    fn related_texts_are_closer_than_unrelated() {
        let e = embedder();
        let community_q = e.embed("what communities exist in this social network");
        let community_doc = e.embed("detect communities in a social network");
        let toxicity_doc = e.embed("predict the toxicity of a molecule");
        assert!(community_q.cosine(&community_doc) < community_q.cosine(&toxicity_doc));
    }

    #[test]
    fn subword_features_bridge_morphology() {
        let e = embedder();
        let a = e.embed("community");
        let b = e.embed("communities");
        let c = e.embed("solubility");
        assert!(a.cosine(&b) < a.cosine(&c));
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = embedder();
        let v = e.embed("");
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn tfidf_downweights_ubiquitous_tokens() {
        let mut with = Embedder::new(EmbedderConfig { dim: 64, char_ngram: 0, use_tfidf: true });
        with.fit(["graph alpha", "graph beta", "graph gamma"]);
        // "graph" appears everywhere; a query sharing only "graph" should be
        // farther from "graph alpha" than a query sharing the rare "alpha".
        let d_common = with.embed("graph").cosine(&with.embed("graph alpha"));
        let d_rare = with.embed("alpha").cosine(&with.embed("graph alpha"));
        assert!(d_rare < d_common);
    }

    #[test]
    fn embed_all_matches_embed() {
        let e = embedder();
        let batch = e.embed_all(["a b c", "d e f"]);
        assert_eq!(batch[0], e.embed("a b c"));
        assert_eq!(batch[1], e.embed("d e f"));
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        Embedder::new(EmbedderConfig { dim: 0, char_ngram: 0, use_tfidf: false });
    }
}
