//! Dense vectors and distance metrics.


/// A dense `f32` vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector(pub Vec<f32>);

chatgraph_support::impl_json_newtype!(Vector);

/// Distance metric selector shared by the embedder and the ANN indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    L2,
    /// Cosine distance `1 − cos(a, b)`.
    Cosine,
    /// Negative inner product (smaller = more similar).
    Dot,
}

chatgraph_support::impl_json_enum_unit!(Metric { L2, Cosine, Dot });

impl Vector {
    /// A zero vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Raw slice access.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Scales the vector to unit norm (no-op for zero vectors).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for x in &mut self.0 {
                *x /= n;
            }
        }
    }

    /// Inner product. Panics on dimension mismatch.
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Squared Euclidean distance.
    pub fn l2_sq(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance.
    pub fn l2(&self, other: &Vector) -> f32 {
        self.l2_sq(other).sqrt()
    }

    /// Cosine distance `1 − cos`. Zero vectors are treated as orthogonal to
    /// everything (distance 1).
    pub fn cosine(&self, other: &Vector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 1.0;
        }
        1.0 - (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Distance under the chosen metric.
    pub fn distance(&self, other: &Vector, metric: Metric) -> f32 {
        match metric {
            Metric::L2 => self.l2(other),
            Metric::Cosine => self.cosine(other),
            Metric::Dot => -self.dot(other),
        }
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_normalize() {
        let mut v = Vector(vec![3.0, 4.0]);
        assert_eq!(v.norm(), 5.0);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        let mut z = Vector::zeros(2);
        z.normalize(); // must not NaN
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn distances() {
        let a = Vector(vec![1.0, 0.0]);
        let b = Vector(vec![0.0, 1.0]);
        assert_eq!(a.l2(&b), 2.0f32.sqrt());
        assert_eq!(a.dot(&b), 0.0);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&a), 0.0);
        assert_eq!(a.distance(&b, Metric::Dot), -0.0);
    }

    #[test]
    fn cosine_of_zero_vector_is_one() {
        let a = Vector(vec![1.0, 2.0]);
        let z = Vector::zeros(2);
        assert_eq!(a.cosine(&z), 1.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        Vector(vec![1.0]).dot(&Vector(vec![1.0, 2.0]));
    }

    #[test]
    fn metric_dispatch() {
        let a = Vector(vec![1.0, 1.0]);
        let b = Vector(vec![1.0, 1.0]);
        assert_eq!(a.distance(&b, Metric::L2), 0.0);
        assert_eq!(a.distance(&b, Metric::Cosine), 0.0);
        assert_eq!(a.distance(&b, Metric::Dot), -2.0);
    }
}
