//! Tokenisation: lowercase word splitting and character n-grams.

/// Splits text into lowercase alphanumeric word tokens.
pub fn words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// Character n-grams of one word, padded with `^`/`$` boundary markers so
/// prefixes and suffixes hash distinctly (fastText-style subword features).
pub fn char_ngrams(word: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('^')
        .chain(word.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// All features of a text: word unigrams, word bigrams (`a_b`), and char
/// n-grams of each word when `ngram > 0`.
pub fn features(text: &str, ngram: usize) -> Vec<String> {
    let ws = words(text);
    let mut out = Vec::with_capacity(ws.len() * 4);
    for w in &ws {
        out.push(w.clone());
        if ngram > 0 {
            out.extend(char_ngrams(w, ngram));
        }
    }
    for pair in ws.windows(2) {
        out.push(format!("{}_{}", pair[0], pair[1]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_lowercase_and_split() {
        assert_eq!(
            words("Find the Top-5 communities!"),
            vec!["find", "the", "top", "5", "communities"]
        );
    }

    #[test]
    fn empty_text_has_no_words() {
        assert!(words("  ...  ").is_empty());
    }

    #[test]
    fn char_ngrams_padded() {
        let grams = char_ngrams("cat", 3);
        assert_eq!(grams, vec!["^ca", "cat", "at$"]);
    }

    #[test]
    fn short_word_yields_whole_padded_gram() {
        assert_eq!(char_ngrams("a", 4), vec!["^a$"]);
    }

    #[test]
    fn zero_n_disables_ngrams() {
        assert!(char_ngrams("abc", 0).is_empty());
    }

    #[test]
    fn features_include_bigrams() {
        let f = features("graph cleaning", 0);
        assert!(f.contains(&"graph".to_owned()));
        assert!(f.contains(&"graph_cleaning".to_owned()));
    }

    #[test]
    fn features_with_ngrams_are_superset() {
        let plain = features("toxicity", 0);
        let rich = features("toxicity", 3);
        assert!(rich.len() > plain.len());
        for f in plain {
            assert!(rich.contains(&f));
        }
    }
}
