//! # chatgraph-embed
//!
//! Text-embedding substrate for ChatGraph's API retrieval module (paper
//! §II-A, §II-D): "the text of the prompt is first embedded into a vector,
//! and then the APIs whose embeddings are the most similar vectors to the
//! text's embedding vector are found".
//!
//! The paper uses an off-the-shelf neural sentence embedder. Offline and in
//! pure Rust, this crate substitutes a **deterministic feature-hashing
//! embedder**: word and character-n-gram features are hashed into a fixed
//! dimension with signed hashing, optionally weighted by TF-IDF statistics
//! fit on the API-description corpus, then L2-normalised. Relative cosine
//! similarity between a prompt and API descriptions — all retrieval needs —
//! is preserved because lexically/semantically close texts share features.
//!
//! * [`vector`] — dense `f32` vectors with L2 / cosine / dot distances.
//! * [`tokenizer`] — lowercasing word splitter + character n-grams.
//! * [`hashing`] — stable FNV-1a signed feature hashing.
//! * [`tfidf`] — document-frequency statistics and IDF weighting.
//! * [`embedder`] — the end-to-end [`embedder::Embedder`].

pub mod embedder;
pub mod hashing;
pub mod tfidf;
pub mod tokenizer;
pub mod vector;

pub use embedder::{Embedder, EmbedderConfig};
pub use tfidf::TfIdf;
pub use vector::{Metric, Vector};
