//! TF-IDF statistics over a fitted corpus.

use std::collections::HashMap;

/// Document-frequency table fit on a corpus (the API descriptions, in
/// ChatGraph's retrieval module).
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, usize>,
    n_docs: usize,
}

chatgraph_support::impl_json_struct!(TfIdf { doc_freq, n_docs });

impl TfIdf {
    /// Fits document frequencies over tokenised documents.
    pub fn fit<I, D, T>(docs: I) -> Self
    where
        I: IntoIterator<Item = D>,
        D: IntoIterator<Item = T>,
        T: Into<String>,
    {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0;
        for doc in docs {
            n_docs += 1;
            let uniq: std::collections::HashSet<String> =
                doc.into_iter().map(Into::into).collect();
            for t in uniq {
                *doc_freq.entry(t).or_default() += 1;
            }
        }
        TfIdf { doc_freq, n_docs }
    }

    /// Number of fitted documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Document frequency of a token (0 if unseen).
    pub fn df(&self, token: &str) -> usize {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }

    /// Smoothed inverse document frequency:
    /// `ln(1 + (N + 1) / (1 + df))`. Unseen tokens get the maximum weight,
    /// and the weight stays strictly positive even for an unfit corpus.
    pub fn idf(&self, token: &str) -> f32 {
        let n = self.n_docs as f32;
        let df = self.df(token) as f32;
        (1.0 + (n + 1.0) / (1.0 + df)).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> TfIdf {
        TfIdf::fit(vec![
            vec!["find", "communities", "graph"],
            vec!["find", "toxicity", "graph"],
            vec!["clean", "graph"],
        ])
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let t = TfIdf::fit(vec![vec!["a", "a", "a"], vec!["a", "b"]]);
        assert_eq!(t.df("a"), 2);
        assert_eq!(t.df("b"), 1);
        assert_eq!(t.df("zzz"), 0);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let t = corpus();
        assert!(t.idf("toxicity") > t.idf("find"));
        assert!(t.idf("find") > t.idf("graph"));
    }

    #[test]
    fn unseen_token_has_highest_idf() {
        let t = corpus();
        assert!(t.idf("quux") > t.idf("toxicity"));
    }

    #[test]
    fn empty_corpus_is_benign() {
        let t = TfIdf::fit(Vec::<Vec<String>>::new());
        assert_eq!(t.n_docs(), 0);
        assert!(t.idf("x") > 0.0);
        assert!(t.idf("x").is_finite());
    }
}
