//! Stable signed feature hashing.
//!
//! `std`'s hasher is seeded per-process, so embeddings would differ between
//! runs; FNV-1a is used instead. One bit of the hash supplies the sign
//! ("hashing trick" with signed projection), which keeps collisions unbiased
//! in expectation.

/// 64-bit FNV-1a hash. Stable across runs, platforms and versions.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Maps a feature string to `(index, sign)` for a `dim`-dimensional target.
pub fn hash_feature(feature: &str, dim: usize) -> (usize, f32) {
    debug_assert!(dim > 0);
    let h = fnv1a(feature.as_bytes());
    let idx = (h % dim as u64) as usize;
    // FNV's raw high bits are poorly mixed for short keys, so derive the sign
    // from an avalanche of the whole hash instead of a single raw bit.
    let mixed = h ^ (h >> 33);
    let mixed = mixed.wrapping_mul(0xff51_afd7_ed55_8ccd);
    let sign = if (mixed >> 32) & 1 == 0 { 1.0 } else { -1.0 };
    (idx, sign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_feature_is_stable_and_bounded() {
        let (i1, s1) = hash_feature("community", 256);
        let (i2, s2) = hash_feature("community", 256);
        assert_eq!((i1, s1), (i2, s2));
        assert!(i1 < 256);
        assert!(s1 == 1.0 || s1 == -1.0);
    }

    #[test]
    fn different_features_usually_differ() {
        let pairs: Vec<(usize, f32)> = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .map(|f| hash_feature(f, 1024))
            .collect();
        let distinct: std::collections::HashSet<usize> = pairs.iter().map(|p| p.0).collect();
        assert!(distinct.len() >= 7, "suspiciously many collisions");
    }

    #[test]
    fn signs_are_mixed() {
        let signs: std::collections::HashSet<i8> = (0..64)
            .map(|i| hash_feature(&format!("tok{i}"), 128).1 as i8)
            .collect();
        assert_eq!(signs.len(), 2, "both signs should occur");
    }
}
