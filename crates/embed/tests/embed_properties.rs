//! Property-based tests for the embedding substrate.

use chatgraph_embed::{Embedder, EmbedderConfig, Metric, Vector};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

/// A random word over the alphabet `a..=e`, `min_len..=max_len` chars, so
/// collisions and repeats occur.
fn random_word(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
    let alphabet = ['a', 'b', 'c', 'd', 'e'];
    let len = rng.random_range(min_len..=max_len);
    (0..len)
        .map(|_| *alphabet.choose(rng).expect("non-empty"))
        .collect()
}

/// Up to 11 short words joined by spaces (possibly the empty string).
fn random_text(rng: &mut StdRng) -> String {
    let words = rng.random_range(0usize..12);
    (0..words)
        .map(|_| random_word(rng, 1, 6))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Embeddings are unit-norm (or exactly zero for empty feature sets),
/// deterministic, and dimension-correct for arbitrary text.
#[test]
fn embeddings_unit_norm_and_deterministic() {
    check(
        "embeddings_unit_norm_and_deterministic",
        Config::default().with_cases(128),
        |rng, _size| (random_text(rng), rng.random_range(8usize..64)),
        |(text, dim)| {
            let dim = *dim;
            let e = Embedder::new(EmbedderConfig {
                dim,
                char_ngram: 3,
                use_tfidf: false,
            });
            let v1 = e.embed(text);
            let v2 = e.embed(text);
            prop_assert_eq!(&v1, &v2);
            prop_assert_eq!(v1.dim(), dim);
            let n = v1.norm();
            prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
            Ok(())
        },
    );
}

/// Cosine self-distance is 0, distances are symmetric, and every metric
/// is non-negative where defined.
#[test]
fn metric_axioms() {
    check(
        "metric_axioms",
        Config::default().with_cases(128),
        |rng, _size| (random_text(rng), random_text(rng)),
        |(a, b)| {
            let e = Embedder::new(EmbedderConfig::default());
            let va = e.embed(a);
            let vb = e.embed(b);
            let dab = va.cosine(&vb);
            let dba = vb.cosine(&va);
            prop_assert!((dab - dba).abs() < 1e-5);
            prop_assert!((0.0..=2.0 + 1e-5).contains(&dab));
            if va.norm() > 0.0 {
                prop_assert!(va.cosine(&va) < 1e-5);
            }
            prop_assert!(va.l2(&vb) >= 0.0);
            prop_assert!((va.distance(&vb, Metric::L2) - va.l2(&vb)).abs() < 1e-6);
            Ok(())
        },
    );
}

/// Word order affects embeddings only through bigrams: permuting words
/// changes the vector but keeps the unigram mass, so the distance between
/// a text and its permutation is below the distance to unrelated text.
#[test]
fn permutations_stay_close() {
    check(
        "permutations_stay_close",
        Config::default().with_cases(128),
        |rng, _size| {
            let n = rng.random_range(3usize..8);
            (0..n).map(|_| random_word(rng, 2, 5)).collect::<Vec<_>>()
        },
        |ws| {
            let e = Embedder::new(EmbedderConfig {
                dim: 256,
                char_ngram: 0,
                use_tfidf: false,
            });
            let original = ws.join(" ");
            let mut rev = ws.clone();
            rev.reverse();
            let permuted = rev.join(" ");
            let unrelated = "zzz yyy xxx www vvv";
            let vo = e.embed(&original);
            let d_perm = vo.cosine(&e.embed(&permuted));
            let d_unrel = vo.cosine(&e.embed(unrelated));
            prop_assert!(
                d_perm <= d_unrel + 1e-5,
                "perm {d_perm} vs unrelated {d_unrel}"
            );
            Ok(())
        },
    );
}

/// Fitting TF-IDF never breaks determinism or normalisation.
#[test]
fn tfidf_fitting_is_stable() {
    check(
        "tfidf_fitting_is_stable",
        Config::default().with_cases(128),
        |rng, _size| {
            let n = rng.random_range(1usize..6);
            (0..n).map(|_| random_text(rng)).collect::<Vec<_>>()
        },
        |corpus| {
            let mut e1 = Embedder::new(EmbedderConfig::default());
            e1.fit(corpus.iter());
            let mut e2 = Embedder::new(EmbedderConfig::default());
            e2.fit(corpus.iter());
            let probe = corpus.first().cloned().unwrap_or_default();
            prop_assert_eq!(e1.embed(&probe), e2.embed(&probe));
            Ok(())
        },
    );
}

/// Zero vector edge cases across metrics.
#[test]
fn zero_vector_edge_cases() {
    let z = Vector::zeros(4);
    let v = Vector(vec![1.0, 0.0, 0.0, 0.0]);
    assert_eq!(z.cosine(&v), 1.0);
    assert_eq!(z.l2(&v), 1.0);
    assert_eq!(z.dot(&v), 0.0);
    assert_eq!(z.distance(&v, Metric::Dot), 0.0);
}
