//! Property-based tests for the embedding substrate.

use chatgraph_embed::{Embedder, EmbedderConfig, Metric, Vector};
use proptest::prelude::*;

fn text_strategy() -> impl Strategy<Value = String> {
    // Words over a small alphabet, so collisions and repeats occur.
    prop::collection::vec("[a-e]{1,6}", 0..12).prop_map(|ws| ws.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Embeddings are unit-norm (or exactly zero for empty feature sets),
    /// deterministic, and dimension-correct for arbitrary text.
    #[test]
    fn embeddings_unit_norm_and_deterministic(text in text_strategy(), dim in 8usize..64) {
        let e = Embedder::new(EmbedderConfig { dim, char_ngram: 3, use_tfidf: false });
        let v1 = e.embed(&text);
        let v2 = e.embed(&text);
        prop_assert_eq!(&v1, &v2);
        prop_assert_eq!(v1.dim(), dim);
        let n = v1.norm();
        prop_assert!(n == 0.0 || (n - 1.0).abs() < 1e-4, "norm {n}");
    }

    /// Cosine self-distance is 0, distances are symmetric, and every metric
    /// is non-negative where defined.
    #[test]
    fn metric_axioms(a in text_strategy(), b in text_strategy()) {
        let e = Embedder::new(EmbedderConfig::default());
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let dab = va.cosine(&vb);
        let dba = vb.cosine(&va);
        prop_assert!((dab - dba).abs() < 1e-5);
        prop_assert!((0.0..=2.0 + 1e-5).contains(&dab));
        if va.norm() > 0.0 {
            prop_assert!(va.cosine(&va) < 1e-5);
        }
        prop_assert!(va.l2(&vb) >= 0.0);
        prop_assert!((va.distance(&vb, Metric::L2) - va.l2(&vb)).abs() < 1e-6);
    }

    /// Word order affects embeddings only through bigrams: permuting words
    /// changes the vector but keeps the unigram mass, so the distance between
    /// a text and its permutation is below the distance to unrelated text.
    #[test]
    fn permutations_stay_close(ws in prop::collection::vec("[a-e]{2,5}", 3..8)) {
        let e = Embedder::new(EmbedderConfig { dim: 256, char_ngram: 0, use_tfidf: false });
        let original = ws.join(" ");
        let mut rev = ws.clone();
        rev.reverse();
        let permuted = rev.join(" ");
        let unrelated = "zzz yyy xxx www vvv";
        let vo = e.embed(&original);
        let d_perm = vo.cosine(&e.embed(&permuted));
        let d_unrel = vo.cosine(&e.embed(unrelated));
        prop_assert!(d_perm <= d_unrel + 1e-5, "perm {d_perm} vs unrelated {d_unrel}");
    }

    /// Fitting TF-IDF never breaks determinism or normalisation.
    #[test]
    fn tfidf_fitting_is_stable(corpus in prop::collection::vec(text_strategy(), 1..6)) {
        let mut e1 = Embedder::new(EmbedderConfig::default());
        e1.fit(corpus.iter());
        let mut e2 = Embedder::new(EmbedderConfig::default());
        e2.fit(corpus.iter());
        let probe = corpus.first().cloned().unwrap_or_default();
        prop_assert_eq!(e1.embed(&probe), e2.embed(&probe));
    }
}

/// Zero vector edge cases across metrics.
#[test]
fn zero_vector_edge_cases() {
    let z = Vector::zeros(4);
    let v = Vector(vec![1.0, 0.0, 0.0, 0.0]);
    assert_eq!(z.cosine(&v), 1.0);
    assert_eq!(z.l2(&v), 1.0);
    assert_eq!(z.dot(&v), 0.0);
    assert_eq!(z.distance(&v, Metric::Dot), 0.0);
}
