//! Plan-scheduler bench: the same branch-parallel chain executed
//! sequentially (1 worker) and with a 4-worker pool, plus a warm-memo run.
//! Writes `results/BENCH_plan_exec.json` including the measured speedup.
//!
//! The chain is eight independent whole-graph analyses — after plan
//! lowering they form one `Segment::Parallel` of eight singleton
//! sub-chains, the shape the scheduler exists for.

use chatgraph_apis::{registry, ApiCall, ApiChain, ExecContext, Scheduler, SilentMonitor};
use chatgraph_bench::{available_cpus, env_json, record_stats as record};
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_support::bench::Bench;
use chatgraph_support::json::Json;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let reg = registry::standard();
    // Heavy steps first so the FIFO job queue hands them to distinct
    // workers; the cheap tail fills in behind them. The betweenness steps
    // use distinct `k` so memoization (when on) treats them as distinct.
    let mut chain = ApiChain::new();
    for (api, k) in [
        ("top_betweenness", "3"),
        ("top_betweenness", "5"),
        ("top_betweenness", "8"),
        ("top_betweenness", "12"),
        ("top_closeness", "5"),
        ("graph_diameter", "5"),
        ("detect_communities", "5"),
        ("top_pagerank", "5"),
        ("clustering_coefficient", "5"),
        ("modularity_score", "5"),
        ("triangle_count", "5"),
    ] {
        chain.push(ApiCall::new(api).with_param("k", k));
    }
    assert!(chain.validate(&reg, true).is_ok(), "bench chain must validate");

    // A scenario-scale social network, big enough that the path-based
    // analyses dominate the scheduler's thread overhead.
    let graph = Arc::new(social_network(
        &SocialParams {
            communities: 6,
            community_size: 50,
            p_intra: 0.3,
            p_inter: 0.01,
        },
        42,
    ));

    // Memoization off for the timed comparison: with the cache on, every
    // iteration after the first is a pure memo hit and the comparison would
    // measure the cache, not the executor.
    let seq = Scheduler::new(1).with_memo_capacity(0);
    let par = Scheduler::new(4).with_memo_capacity(0);
    let memo = Scheduler::new(4);

    let run = |sched: &Scheduler| {
        let mut ctx = ExecContext::new(Arc::clone(&graph));
        let out = sched.execute(&reg, &chain, &mut ctx, &mut SilentMonitor);
        black_box(out.is_ok());
    };

    let mut results: Vec<(String, Json)> = Vec::new();
    let mut bench = Bench::new("plan_exec");
    let mut group = bench.group("plan_exec");
    let seq_stats = group.bench("sequential_1_worker", || run(&seq));
    record(&mut results, "sequential_1_worker", seq_stats);
    let par_stats = group.bench("parallel_4_workers", || run(&par));
    record(&mut results, "parallel_4_workers", par_stats);
    let memo_stats = group.bench("parallel_4_workers_warm_memo", || run(&memo));
    record(&mut results, "parallel_4_workers_warm_memo", memo_stats);

    let speedup = seq_stats.median.as_nanos() as f64 / par_stats.median.as_nanos().max(1) as f64;
    let memo_speedup =
        seq_stats.median.as_nanos() as f64 / memo_stats.median.as_nanos().max(1) as f64;
    // On a single-CPU runner the 4-worker pool cannot beat sequential;
    // record the machine's parallelism so the numbers read correctly.
    let cpus = available_cpus();
    println!("\nspeedup (sequential / 4-worker, median): {speedup:.2}x on {cpus} cpu(s)");
    println!("speedup (sequential / warm memo, median): {memo_speedup:.2}x");

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("plan_exec".to_owned())),
        ("chain_len".to_owned(), Json::UInt(chain.len() as u64)),
        ("graph_nodes".to_owned(), Json::UInt(graph.node_count() as u64)),
        ("env".to_owned(), env_json(4)),
        ("speedup_median".to_owned(), Json::Float(speedup)),
        ("memo_speedup_median".to_owned(), Json::Float(memo_speedup)),
        ("results".to_owned(), Json::Object(results)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_plan_exec.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
