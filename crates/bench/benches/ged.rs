//! Timing benches for the GED substrate (node matching-based loss,
//! similarity search).

use chatgraph_ged::{approx_ged, exact_ged, hungarian, matching_loss, CostModel};
use chatgraph_graph::generators::{molecule, MoleculeParams};
use chatgraph_graph::GraphBuilder;
use chatgraph_support::bench::Bench;
use chatgraph_support::rng::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_cost_matrix(n: usize) -> Vec<Vec<f64>> {
    let mut rng = chatgraph_support::rng::ChaCha12Rng::seed_from_u64(9);
    (0..n)
        .map(|_| (0..n).map(|_| rng.random_range(0.0..10.0)).collect())
        .collect()
}

fn chain_graph(len: usize) -> chatgraph_graph::Graph {
    let mut b = GraphBuilder::directed();
    for i in 0..len {
        b = b.node(format!("s{i}"), format!("api{}", i % 5));
    }
    for i in 1..len {
        b = b.edge(format!("s{}", i - 1), format!("s{i}"), "next");
    }
    b.build()
}

fn main() {
    let mut bench = Bench::new("ged");
    let mut group = bench.group("ged");
    for &n in &[8usize, 16, 32, 64] {
        let m = random_cost_matrix(n);
        group.bench(&format!("hungarian/{n}"), || {
            black_box(hungarian(black_box(&m)));
        });
    }
    let cost = CostModel::uniform();
    for &atoms in &[8usize, 16, 32] {
        let g1 = molecule(&MoleculeParams { atoms, rings: 2, double_bond_prob: 0.15 }, 1);
        let g2 = molecule(&MoleculeParams { atoms, rings: 2, double_bond_prob: 0.15 }, 2);
        group.bench(&format!("approx_ged_molecule/{atoms}"), || {
            black_box(approx_ged(black_box(&g1), black_box(&g2), &cost).upper_bound);
        });
    }
    {
        let g1 = molecule(&MoleculeParams { atoms: 7, rings: 1, double_bond_prob: 0.15 }, 1);
        let g2 = molecule(&MoleculeParams { atoms: 7, rings: 1, double_bond_prob: 0.15 }, 2);
        group.bench("exact_ged_molecule_7", || {
            black_box(exact_ged(black_box(&g1), black_box(&g2), &cost));
        });
    }
    for &len in &[3usize, 5, 8] {
        let c1 = chain_graph(len);
        let c2 = chain_graph(len + 1);
        group.bench(&format!("matching_loss_chain/{len}"), || {
            black_box(matching_loss(black_box(&c1), black_box(&c2), 0.5, &cost).total);
        });
    }
}
