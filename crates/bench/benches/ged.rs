//! Criterion benches for the GED substrate (node matching-based loss,
//! similarity search).

use chatgraph_ged::{approx_ged, exact_ged, hungarian, matching_loss, CostModel};
use chatgraph_graph::generators::{molecule, MoleculeParams};
use chatgraph_graph::GraphBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_cost_matrix(n: usize) -> Vec<Vec<f64>> {
    let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(9);
    (0..n)
        .map(|_| (0..n).map(|_| rng.random_range(0.0..10.0)).collect())
        .collect()
}

fn chain_graph(len: usize) -> chatgraph_graph::Graph {
    let mut b = GraphBuilder::directed();
    for i in 0..len {
        b = b.node(format!("s{i}"), format!("api{}", i % 5));
    }
    for i in 1..len {
        b = b.edge(format!("s{}", i - 1), format!("s{i}"), "next");
    }
    b.build()
}

fn bench_ged(c: &mut Criterion) {
    let mut group = c.benchmark_group("ged");
    for &n in &[8usize, 16, 32, 64] {
        let m = random_cost_matrix(n);
        group.bench_with_input(BenchmarkId::new("hungarian", n), &m, |b, m| {
            b.iter(|| hungarian(black_box(m)))
        });
    }
    let cost = CostModel::uniform();
    for &atoms in &[8usize, 16, 32] {
        let g1 = molecule(&MoleculeParams { atoms, rings: 2, double_bond_prob: 0.15 }, 1);
        let g2 = molecule(&MoleculeParams { atoms, rings: 2, double_bond_prob: 0.15 }, 2);
        group.bench_with_input(BenchmarkId::new("approx_ged_molecule", atoms), &(g1, g2), |b, (g1, g2)| {
            b.iter(|| approx_ged(black_box(g1), black_box(g2), &cost).upper_bound)
        });
    }
    {
        let g1 = molecule(&MoleculeParams { atoms: 7, rings: 1, double_bond_prob: 0.15 }, 1);
        let g2 = molecule(&MoleculeParams { atoms: 7, rings: 1, double_bond_prob: 0.15 }, 2);
        group.bench_function("exact_ged_molecule_7", |b| {
            b.iter(|| exact_ged(black_box(&g1), black_box(&g2), &cost))
        });
    }
    for &len in &[3usize, 5, 8] {
        let c1 = chain_graph(len);
        let c2 = chain_graph(len + 1);
        group.bench_with_input(
            BenchmarkId::new("matching_loss_chain", len),
            &(c1, c2),
            |b, (c1, c2)| b.iter(|| matching_loss(black_box(c1), black_box(c2), 0.5, &cost).total),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
