//! Durable store bench: WAL append throughput, recovery time as a
//! function of WAL length, and checkpoint/compaction cost. Also measures
//! the unarmed crash-injection check against a plain append to show the
//! injection hook is free on the hot path. Writes
//! `results/BENCH_store.json`. `--quick` runs a small smoke tier and
//! validates the committed artifact instead of overwriting it.

use chatgraph_bench::{env_json, quick_mode};
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::Graph;
use chatgraph_store::{CrashMode, CrashPoint, GraphStore};
use chatgraph_support::json::Json;
use std::path::PathBuf;
use std::time::Instant;

/// Commits per append-throughput run.
const APPEND_COMMITS: usize = 256;
/// WAL lengths (in commits) for the recovery-time curve.
const RECOVERY_LEVELS: [usize; 4] = [16, 64, 256, 1024];
/// Repetitions per recovery measurement (medians reported).
const RECOVERY_REPS: usize = 5;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chatgraph-store-bench-{tag}-{}.cgdb", std::process::id()))
}

fn seed_graph() -> Graph {
    social_network(&SocialParams::default(), 11)
}

/// One synthetic mutation per commit: a fresh node wired to an existing one.
fn mutate(g: &mut Graph, round: usize) {
    let first = g.node_ids().next();
    let v = g.add_node(format!("n{round}"));
    if let Some(u) = first {
        let _ = g.add_edge(u, v, "follows");
    }
}

/// Builds a store with `commits` commits, returning `(path, wal_bytes)`.
/// The caller removes the file.
fn build_wal(tag: &str, commits: usize) -> (PathBuf, u64) {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let mut g = seed_graph();
    let store = GraphStore::create(&path, &g).expect("create");
    for round in 0..commits {
        mutate(&mut g, round);
        store.commit(&g).expect("commit");
    }
    (path, store.wal_bytes())
}

/// Commits `commits` mutations, returning `(secs, bytes_appended)`.
/// `armed` installs a crash point that can never fire, to price the
/// injection check on the hot path.
fn time_appends(tag: &str, commits: usize, armed: bool) -> (f64, u64) {
    let path = temp_path(tag);
    let _ = std::fs::remove_file(&path);
    let mut g = seed_graph();
    let store = GraphStore::create(&path, &g).expect("create");
    if armed {
        store.arm_crash(CrashPoint { at_byte: u64::MAX, mode: CrashMode::Truncate });
    }
    let start = Instant::now();
    let mut bytes = 0u64;
    for round in 0..commits {
        mutate(&mut g, round);
        bytes += store.commit(&g).expect("commit").bytes;
    }
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    (secs, bytes)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn append_json(label: &str, commits: usize, secs: f64, bytes: u64) -> (String, Json) {
    (
        label.to_owned(),
        Json::Object(vec![
            ("commits".to_owned(), Json::UInt(commits as u64)),
            ("seconds".to_owned(), Json::Float(secs)),
            ("commits_per_sec".to_owned(), Json::Float(commits as f64 / secs.max(1e-9))),
            ("bytes_appended".to_owned(), Json::UInt(bytes)),
            (
                "append_mb_per_sec".to_owned(),
                Json::Float(bytes as f64 / 1e6 / secs.max(1e-9)),
            ),
        ]),
    )
}

fn validate_committed_artifact(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("committed {} unreadable: {e}", path.display()));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("committed {} is not valid JSON: {e}", path.display()));
    for field in ["bench", "append", "append_armed_noop", "recovery", "checkpoint", "env"] {
        assert!(doc.get(field).is_some(), "artifact is missing `{field}`");
    }
    let recovery = doc
        .get("recovery")
        .and_then(|r| r.as_array())
        .expect("artifact carries a `recovery` array");
    assert!(!recovery.is_empty(), "recovery curve is empty");
    for level in recovery {
        for field in ["commits", "wal_bytes", "recovery_ms", "replay_mb_per_sec"] {
            assert!(level.get(field).is_some(), "recovery level is missing `{field}`");
        }
    }
    println!("committed {} validated: schema intact", path.display());
}

fn main() {
    let quick = quick_mode();
    let commits = if quick { 32 } else { APPEND_COMMITS };

    // Append throughput, plain and with a never-firing crash point armed:
    // the difference prices the injection check on the unarmed path.
    let (plain_secs, plain_bytes) = time_appends("append", commits, false);
    let (armed_secs, armed_bytes) = time_appends("append-armed", commits, true);
    println!(
        "append: {:.0} commits/s plain, {:.0} commits/s with a dormant crash point \
         ({:.1} MB/s WAL)",
        commits as f64 / plain_secs.max(1e-9),
        commits as f64 / armed_secs.max(1e-9),
        plain_bytes as f64 / 1e6 / plain_secs.max(1e-9),
    );

    // Recovery time as a function of WAL length.
    let levels = if quick { &RECOVERY_LEVELS[..2] } else { &RECOVERY_LEVELS[..] };
    let mut recovery = Vec::new();
    for &n in levels {
        let (path, wal_bytes) = build_wal(&format!("recover-{n}"), n);
        let mut times = Vec::new();
        let mut replayed = 0usize;
        for _ in 0..RECOVERY_REPS {
            let start = Instant::now();
            let (_, report) = GraphStore::open(&path).expect("open");
            times.push(start.elapsed().as_secs_f64());
            replayed = report.records_replayed;
        }
        let secs = median(times);
        println!(
            "recovery: {n} commits ({wal_bytes} WAL bytes, {replayed} records) in {:.1}ms",
            secs * 1e3
        );
        recovery.push(Json::Object(vec![
            ("commits".to_owned(), Json::UInt(n as u64)),
            ("wal_bytes".to_owned(), Json::UInt(wal_bytes)),
            ("records_replayed".to_owned(), Json::UInt(replayed as u64)),
            ("recovery_ms".to_owned(), Json::Float(secs * 1e3)),
            (
                "replay_mb_per_sec".to_owned(),
                Json::Float(wal_bytes as f64 / 1e6 / secs.max(1e-9)),
            ),
        ]));
        let _ = std::fs::remove_file(&path);
    }

    // Checkpoint cost at the largest level: compaction time and the WAL
    // bytes it reclaims.
    let ckpt_commits = *levels.last().expect("levels are non-empty");
    let (path, wal_bytes) = build_wal("checkpoint", ckpt_commits);
    let (store, _) = GraphStore::open(&path).expect("open");
    let start = Instant::now();
    let report = store.checkpoint().expect("checkpoint");
    let ckpt_secs = start.elapsed().as_secs_f64();
    println!(
        "checkpoint: {ckpt_commits} commits compacted in {:.1}ms, {} of {wal_bytes} WAL \
         bytes reclaimed, file now {} bytes",
        ckpt_secs * 1e3,
        report.reclaimed,
        report.file_bytes
    );
    let checkpoint = Json::Object(vec![
        ("commits".to_owned(), Json::UInt(ckpt_commits as u64)),
        ("wal_bytes_before".to_owned(), Json::UInt(wal_bytes)),
        ("checkpoint_ms".to_owned(), Json::Float(ckpt_secs * 1e3)),
        ("reclaimed_bytes".to_owned(), Json::UInt(report.reclaimed)),
        ("file_bytes_after".to_owned(), Json::UInt(report.file_bytes)),
    ]);
    let _ = std::fs::remove_file(&path);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.join("results/BENCH_store.json");
    if quick {
        validate_committed_artifact(&out);
        return;
    }

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("store".to_owned())),
        ("env".to_owned(), env_json(1)),
        append_json("append", commits, plain_secs, plain_bytes),
        append_json("append_armed_noop", commits, armed_secs, armed_bytes),
        (
            "armed_noop_overhead_ratio".to_owned(),
            Json::Float(armed_secs / plain_secs.max(1e-9)),
        ),
        ("recovery".to_owned(), Json::Array(recovery)),
        ("checkpoint".to_owned(), checkpoint),
    ]);
    match std::fs::write(&out, doc.render()) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => println!("could not write {}: {e}", out.display()),
    }
}
