//! Supervisor-overhead bench: the plan-exec chain run (a) with a passive
//! supervisor (the default — no deadlines, no faults), (b) with an armed
//! supervisor (deadline + retries configured, fault-free), and (c) with
//! error faults injected and retried. Writes
//! `results/BENCH_fault_exec.json` including the armed-vs-passive overhead,
//! which must stay small: arming a deadline adds one `CancelToken` clone
//! per step plus an atomic poll per kernel chunk.

use chatgraph_apis::supervisor::{FailurePolicy, FaultPlan, SupervisorConfig};
use chatgraph_apis::{registry, ApiCall, ApiChain, ExecContext, Scheduler, SilentMonitor};
use chatgraph_bench::{env_json, record_stats as record};
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_support::bench::Bench;
use chatgraph_support::json::Json;
use std::hint::black_box;
use std::sync::Arc;

fn main() {
    let reg = registry::standard();
    let mut chain = ApiChain::new();
    for (api, k) in [
        ("top_betweenness", "3"),
        ("top_betweenness", "5"),
        ("top_closeness", "5"),
        ("detect_communities", "5"),
        ("top_pagerank", "5"),
        ("clustering_coefficient", "5"),
        ("modularity_score", "5"),
        ("triangle_count", "5"),
    ] {
        chain.push(ApiCall::new(api).with_param("k", k));
    }
    assert!(chain.validate(&reg, true).is_ok(), "bench chain must validate");

    let graph = Arc::new(social_network(
        &SocialParams {
            communities: 6,
            community_size: 50,
            p_intra: 0.3,
            p_inter: 0.01,
        },
        42,
    ));

    // Memoization off throughout: a warm cache would hide the per-attempt
    // supervisor cost this bench exists to measure.
    let passive = Scheduler::new(4).with_memo_capacity(0);
    // Armed but fault-free: a generous deadline every step must check yet
    // never hit — the pure bookkeeping cost of supervision.
    let armed = Scheduler::new(4).with_memo_capacity(0).with_supervisor(SupervisorConfig {
        step_deadline_ms: 60_000,
        max_retries: 2,
        failure_policy: FailurePolicy::SkipDegraded,
        ..Default::default()
    });
    // Error faults on every step, recovering after one failed attempt: each
    // step pays one injected failure + backoff + re-run. (Error faults, not
    // panics: unwinding would spray hook output over the bench report.)
    let faulted = Scheduler::new(4).with_memo_capacity(0).with_supervisor(SupervisorConfig {
        max_retries: 2,
        failure_policy: FailurePolicy::Abort,
        faults: Some(FaultPlan::new(7).with_error_rate(1.0).with_faults_per_step(1)),
        ..Default::default()
    });

    let run = |sched: &Scheduler| {
        let mut ctx = ExecContext::new(Arc::clone(&graph));
        let out = sched.execute(&reg, &chain, &mut ctx, &mut SilentMonitor);
        black_box(out.is_ok());
    };
    {
        let mut ctx = ExecContext::new(Arc::clone(&graph));
        assert!(
            faulted.execute(&reg, &chain, &mut ctx, &mut SilentMonitor).is_ok(),
            "every fault must be retried away"
        );
    }

    let mut results: Vec<(String, Json)> = Vec::new();
    let mut bench = Bench::new("fault_exec");
    let mut group = bench.group("fault_exec");
    let passive_stats = group.bench("supervisor_passive", || run(&passive));
    record(&mut results, "supervisor_passive", passive_stats);
    let armed_stats = group.bench("supervisor_armed_fault_free", || run(&armed));
    record(&mut results, "supervisor_armed_fault_free", armed_stats);
    let faulted_stats = group.bench("supervisor_faulted_all_retry", || run(&faulted));
    record(&mut results, "supervisor_faulted_all_retry", faulted_stats);

    let overhead_pct = (armed_stats.median.as_nanos() as f64
        / passive_stats.median.as_nanos().max(1) as f64
        - 1.0)
        * 100.0;
    let fault_cost =
        faulted_stats.median.as_nanos() as f64 / passive_stats.median.as_nanos().max(1) as f64;
    println!("\narmed-supervisor overhead vs passive (median): {overhead_pct:+.2}%");
    println!("all-steps-faulted cost vs passive (median): {fault_cost:.2}x");

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("fault_exec".to_owned())),
        ("chain_len".to_owned(), Json::UInt(chain.len() as u64)),
        ("graph_nodes".to_owned(), Json::UInt(graph.node_count() as u64)),
        ("env".to_owned(), env_json(4)),
        ("armed_overhead_pct_median".to_owned(), Json::Float(overhead_pct)),
        ("faulted_cost_ratio_median".to_owned(), Json::Float(fault_cost)),
        ("results".to_owned(), Json::Object(results)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_fault_exec.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
