//! Criterion benches for ANN search (experiment E6's timing side):
//! τ-MG vs HNSW vs brute force at equal k.

use chatgraph_ann::dataset::{clustered, queries, ClusterParams};
use chatgraph_ann::{AnnIndex, FlatIndex, Hnsw, HnswParams, Metric, SearchStats, TauMg, TauMgParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_ann(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann_search");
    let params = ClusterParams { n: 8000, dim: 32, clusters: 40, noise: 0.06 };
    let data = clustered(&params, 3);
    let qs = queries(&params, 64, 3);

    let flat = FlatIndex::build(data.clone(), Metric::L2);
    let taumg = TauMg::build(data.clone(), TauMgParams::default());
    let mrng = TauMg::build_mrng(data.clone(), TauMgParams::default());
    let hnsw = Hnsw::build(data, HnswParams::default());

    let mut qi = 0usize;
    let mut next_q = move || {
        qi = (qi + 1) % 64;
        qi
    };
    group.bench_function(BenchmarkId::new("flat", 8000), |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            flat.search(black_box(&qs[next_q()]), 10, &mut stats)
        })
    });
    let mut next_q2 = {
        let mut qi = 0usize;
        move || {
            qi = (qi + 1) % 64;
            qi
        }
    };
    group.bench_function(BenchmarkId::new("taumg", 8000), |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            taumg.search(black_box(&qs[next_q2()]), 10, &mut stats)
        })
    });
    let mut next_q3 = {
        let mut qi = 0usize;
        move || {
            qi = (qi + 1) % 64;
            qi
        }
    };
    group.bench_function(BenchmarkId::new("mrng", 8000), |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            mrng.search(black_box(&qs[next_q3()]), 10, &mut stats)
        })
    });
    let mut next_q4 = {
        let mut qi = 0usize;
        move || {
            qi = (qi + 1) % 64;
            qi
        }
    };
    group.bench_function(BenchmarkId::new("hnsw", 8000), |b| {
        b.iter(|| {
            let mut stats = SearchStats::default();
            hnsw.search(black_box(&qs[next_q4()]), 10, &mut stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ann);
criterion_main!(benches);
