//! Timing benches for ANN search (experiment E6's timing side):
//! τ-MG vs HNSW vs brute force at equal k.

use chatgraph_ann::dataset::{clustered, queries, ClusterParams};
use chatgraph_ann::{
    AnnIndex, FlatIndex, Hnsw, HnswParams, Metric, SearchStats, TauMg, TauMgParams,
};
use chatgraph_support::bench::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::new("ann_search");
    let mut group = bench.group("ann_search");
    let params = ClusterParams { n: 8000, dim: 32, clusters: 40, noise: 0.06 };
    let data = clustered(&params, 3);
    let qs = queries(&params, 64, 3);

    let flat = FlatIndex::build(data.clone(), Metric::L2);
    let taumg = TauMg::build(data.clone(), TauMgParams::default());
    let mrng = TauMg::build_mrng(data.clone(), TauMgParams::default());
    let hnsw = Hnsw::build(data, HnswParams::default());

    let mut qi = 0usize;
    group.bench("flat/8000", || {
        qi = (qi + 1) % 64;
        let mut stats = SearchStats::default();
        black_box(flat.search(black_box(&qs[qi]), 10, &mut stats));
    });
    let mut qi = 0usize;
    group.bench("taumg/8000", || {
        qi = (qi + 1) % 64;
        let mut stats = SearchStats::default();
        black_box(taumg.search(black_box(&qs[qi]), 10, &mut stats));
    });
    let mut qi = 0usize;
    group.bench("mrng/8000", || {
        qi = (qi + 1) % 64;
        let mut stats = SearchStats::default();
        black_box(mrng.search(black_box(&qs[qi]), 10, &mut stats));
    });
    let mut qi = 0usize;
    group.bench("hnsw/8000", || {
        qi = (qi + 1) % 64;
        let mut stats = SearchStats::default();
        black_box(hnsw.search(black_box(&qs[qi]), 10, &mut stats));
    });
}
