//! Timing benches for the static chain analyzer: registry lowering, the
//! full multi-pass analysis, the decoder's pruning predicate, and repolint's
//! lexer. Writes the machine-readable baseline to
//! `results/BENCH_chain_analysis.json`.

use chatgraph_analyzer::lexer;
use chatgraph_apis::{analysis, registry, ApiCall, ApiChain};
use chatgraph_bench::{env_json, record_stats as record};
use chatgraph_support::bench::Bench;
use chatgraph_support::json::Json;
use std::hint::black_box;

fn main() {
    let reg = registry::standard();
    // A representative 6-step chain mixing clean steps, parameter lints and
    // a confirmation-gated edit, so every analysis pass does real work.
    let mut chain = ApiChain::new();
    chain.push(ApiCall::new("detect_incorrect_edges"));
    chain.push(ApiCall::new("remove_edges"));
    chain.push(ApiCall::new("top_pagerank").with_param("k", "5000").with_param("kk", "3"));
    chain.push(ApiCall::new("detect_communities"));
    chain.push(ApiCall::new("top_betweenness").with_param("k", "lots"));
    chain.push(ApiCall::new("generate_report"));
    let names: Vec<String> = reg.names().iter().map(|s| s.to_string()).collect();
    // cargo runs benches from the package dir; anchor paths at the
    // workspace root so the baseline lands next to the other results.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let lexer_input = std::fs::read_to_string(root.join("crates/analyzer/src/repolint.rs"))
        .unwrap_or_else(|_| "fn main() { let x = 1; }".repeat(200));

    let mut results: Vec<(String, Json)> = Vec::new();
    let mut bench = Bench::new("chain_analysis");
    let mut group = bench.group("chain_analysis");
    record(
        &mut results,
        "lower_registry",
        group.bench("lower_registry", || {
            black_box(analysis::lower_registry(black_box(&reg)).names().count());
        }),
    );
    record(
        &mut results,
        "analyze_6_step_chain",
        group.bench("analyze_6_step_chain", || {
            black_box(analysis::analyze(black_box(&chain), &reg, true).len());
        }),
    );
    record(
        &mut results,
        "can_extend_full_registry",
        group.bench("can_extend_full_registry", || {
            let n = names
                .iter()
                .filter(|c| analysis::can_extend(&reg, Some("detect_communities"), c, true))
                .count();
            black_box(n);
        }),
    );
    record(
        &mut results,
        "lex_bench_source",
        group.bench("lex_bench_source", || {
            black_box(lexer::scan(black_box(&lexer_input)).len());
        }),
    );

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("chain_analysis".to_owned())),
        ("env".to_owned(), env_json(1)),
        ("results".to_owned(), Json::Object(results)),
    ]);
    let path = root.join("results/BENCH_chain_analysis.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => println!("\ncould not write {}: {e}", path.display()),
    }
}
