//! Criterion benches for the graph-algorithm substrate backing the analysis
//! APIs (scenario 1's report pipeline).

use chatgraph_graph::algo::{centrality, community, components, stats, triangles};
use chatgraph_graph::generators::{social_network, SocialParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn social(n_per_comm: usize) -> chatgraph_graph::Graph {
    social_network(
        &SocialParams {
            communities: 4,
            community_size: n_per_comm,
            p_intra: 0.2,
            p_inter: 0.01,
        },
        7,
    )
}

fn bench_algos(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_algos");
    for &size in &[25usize, 50, 100] {
        let g = social(size);
        group.bench_with_input(BenchmarkId::new("label_propagation", size * 4), &g, |b, g| {
            b.iter(|| community::label_propagation(black_box(g), 1))
        });
        group.bench_with_input(BenchmarkId::new("pagerank", size * 4), &g, |b, g| {
            b.iter(|| centrality::pagerank(black_box(g), 0.85, 30))
        });
        group.bench_with_input(BenchmarkId::new("betweenness", size * 4), &g, |b, g| {
            b.iter(|| centrality::betweenness(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("triangles", size * 4), &g, |b, g| {
            b.iter(|| triangles::triangle_count(black_box(g)))
        });
        group.bench_with_input(BenchmarkId::new("components", size * 4), &g, |b, g| {
            b.iter(|| components::connected_components(black_box(g)).count)
        });
        group.bench_with_input(BenchmarkId::new("graph_stats", size * 4), &g, |b, g| {
            b.iter(|| stats::graph_stats(black_box(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algos);
criterion_main!(benches);
