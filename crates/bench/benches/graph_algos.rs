//! Timing benches for the graph-algorithm substrate backing the analysis
//! APIs (scenario 1's report pipeline).

use chatgraph_graph::algo::{centrality, community, components, stats, triangles};
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_support::bench::Bench;
use std::hint::black_box;

fn social(n_per_comm: usize) -> chatgraph_graph::Graph {
    social_network(
        &SocialParams {
            communities: 4,
            community_size: n_per_comm,
            p_intra: 0.2,
            p_inter: 0.01,
        },
        7,
    )
}

fn main() {
    let mut bench = Bench::new("graph_algos");
    let mut group = bench.group("graph_algos");
    for &size in &[25usize, 50, 100] {
        let g = social(size);
        let n = size * 4;
        group.bench(&format!("label_propagation/{n}"), || {
            black_box(community::label_propagation(black_box(&g), 1));
        });
        group.bench(&format!("pagerank/{n}"), || {
            black_box(centrality::pagerank(black_box(&g), 0.85, 30));
        });
        group.bench(&format!("betweenness/{n}"), || {
            black_box(centrality::betweenness(black_box(&g)));
        });
        group.bench(&format!("triangles/{n}"), || {
            black_box(triangles::triangle_count(black_box(&g)));
        });
        group.bench(&format!("components/{n}"), || {
            black_box(components::connected_components(black_box(&g)).count);
        });
        group.bench(&format!("graph_stats/{n}"), || {
            black_box(stats::graph_stats(black_box(&g)));
        });
    }
}
