//! Multi-tenant serving bench: a seeded open-loop workload over the
//! [`SessionServer`] shared worker pool, solo-vs-shared cache modes, at
//! several pool widths, plus a duplicate-heavy workload gating the
//! singleflight step coalescing (executed-steps/requested-steps and req/s
//! with coalescing on vs off). Writes `results/BENCH_serving.json` with
//! requests/sec, sessions/sec, p50/p95 chain latency (queue wait
//! included), the cross-session memo hit rates, and the coalescing
//! comparison. `--quick` runs only the coalescing tier and validates the
//! committed artifact instead of overwriting it.

use chatgraph_apis::{ApiCall, ApiChain, MemoStats};
use chatgraph_bench::{env_json, quick_mode};
use chatgraph_core::serve::{Request, ServeConfig, SessionServer};
use chatgraph_core::session::SessionCore;
use chatgraph_core::ChatGraphConfig;
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::Graph;
use chatgraph_support::json::Json;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: usize = 8;
const ROUNDS: usize = 4;
/// Fresh-server repetitions of the cold duplicate-heavy round (coalescing
/// only matters cold — warm rounds are all memo hits in either mode).
const DEDUP_ITERS: usize = 3;
/// Pool width for the coalescing comparison (and the widest sweep level);
/// recorded in `env` so `oversubscribed` reflects what actually ran.
const MAX_POOL_WORKERS: usize = 4;

fn tenant_graph(i: usize) -> Graph {
    // Four distinct graphs across eight tenants: each graph is shared by
    // exactly two tenants, the cross-session cache-sharing case.
    social_network(
        &SocialParams {
            communities: 4,
            community_size: 30,
            p_intra: 0.3,
            p_inter: 0.02,
        },
        (i % 4) as u64 + 11,
    )
}

fn tenant_requests() -> Vec<Request> {
    // Read-heavy analysis chains, no within-tenant repetition: a memo hit
    // in a single cold round can only come from another tenant.
    [
        vec![("top_pagerank", "5")],
        vec![("detect_communities", "5")],
        vec![("clustering_coefficient", "5")],
        vec![("triangle_count", "5")],
        vec![("largest_component", "5"), ("node_count", "5")],
        vec![("modularity_score", "5")],
    ]
    .into_iter()
    .map(|calls| {
        let mut chain = ApiChain::new();
        for (api, k) in calls {
            chain.push(ApiCall::new(api).with_param("k", k));
        }
        Request::Execute(chain)
    })
    .collect()
}

fn build_server(core: &Arc<SessionCore>, pool_workers: usize, shared: bool) -> SessionServer {
    let server = SessionServer::from_core(
        Arc::clone(core),
        ServeConfig {
            pool_workers,
            shared_memo: shared,
            shared_csr: shared,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    for i in 0..TENANTS {
        let t = server.open_session().expect("capacity");
        server
            .with_session(t, |s| s.set_graph(tenant_graph(i)))
            .expect("fresh tenant");
    }
    server
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[idx]
}

/// Submits `rounds` full workloads and drains them, returning
/// (total requests, drain seconds, sorted latencies in µs).
fn run_workload(server: &SessionServer, rounds: usize) -> (usize, f64, Vec<u64>) {
    let requests = tenant_requests();
    let tenants = server.tenants();
    let mut latencies = Vec::new();
    let mut total = 0usize;
    let mut secs = 0.0f64;
    for _ in 0..rounds {
        for t in &tenants {
            for req in &requests {
                server.submit(*t, req.clone()).expect("queue has room");
            }
        }
        let start = Instant::now();
        let completed = server.drain();
        secs += start.elapsed().as_secs_f64();
        total += completed.len();
        for c in &completed {
            assert!(c.reply.is_ok(), "workload must serve cleanly");
            latencies.push(c.latency_micros);
        }
    }
    latencies.sort_unstable();
    (total, secs, latencies)
}

/// Per-session memo stats aggregated across tenants (the solo-mode
/// counterpart of the server's shared-memo stats).
fn private_memo_stats(server: &SessionServer) -> MemoStats {
    server
        .tenants()
        .into_iter()
        .fold(MemoStats { hits: 0, misses: 0, coalesced: 0 }, |acc, t| {
            let s = server
                .with_session(t, |s| s.memo_handle().stats())
                .expect("tenant is healthy");
            MemoStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                coalesced: acc.coalesced + s.coalesced,
            }
        })
}

fn memo_json(label: &str, stats: &MemoStats) -> (String, Json) {
    (
        label.to_owned(),
        Json::Object(vec![
            ("hits".to_owned(), Json::UInt(stats.hits)),
            ("misses".to_owned(), Json::UInt(stats.misses)),
            ("hit_rate".to_owned(), Json::Float(stats.hit_rate())),
        ]),
    )
}

/// The duplicate-heavy workload's graph: heavier than the sweep graphs so
/// each unique step holds its flight open long enough for duplicates from
/// other tenants to arrive while it is still in flight — the regime the
/// singleflight exists for.
fn dedup_graph() -> Graph {
    social_network(
        &SocialParams {
            communities: 8,
            community_size: 150,
            p_intra: 0.08,
            p_inter: 0.005,
        },
        11,
    )
}

/// Maximal cross-tenant duplication: every tenant holds the *same* graph,
/// so the identical per-tenant chains fingerprint to identical step keys.
fn dedup_server(core: &Arc<SessionCore>, coalesce: bool) -> SessionServer {
    let server = SessionServer::from_core(
        Arc::clone(core),
        ServeConfig {
            pool_workers: MAX_POOL_WORKERS,
            shared_memo: true,
            shared_csr: true,
            queue_depth: 64,
            coalesce,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    for _ in 0..TENANTS {
        let t = server.open_session().expect("capacity");
        server
            .with_session(t, |s| s.set_graph(dedup_graph()))
            .expect("fresh tenant");
    }
    server
}

/// `iters` cold duplicate-heavy rounds, each on a fresh server, returning
/// the aggregated memo stats, request count, and drain seconds.
fn run_dedup(core: &Arc<SessionCore>, coalesce: bool, iters: usize) -> (MemoStats, usize, f64) {
    let mut agg = MemoStats { hits: 0, misses: 0, coalesced: 0 };
    let (mut total, mut secs) = (0usize, 0.0f64);
    for _ in 0..iters {
        let server = dedup_server(core, coalesce);
        assert_eq!(server.coalescing(), coalesce);
        let (t, s, _) = run_workload(&server, 1);
        total += t;
        secs += s;
        let stats = server.memo_stats();
        agg.hits += stats.hits;
        agg.misses += stats.misses;
        agg.coalesced += stats.coalesced;
    }
    (agg, total, secs)
}

fn coalescing_json(stats: &MemoStats, total: usize, secs: f64) -> Json {
    let requested = stats.requested();
    let executed = stats.executed();
    Json::Object(vec![
        ("requested_steps".to_owned(), Json::UInt(requested)),
        ("executed_steps".to_owned(), Json::UInt(executed)),
        (
            "executed_ratio".to_owned(),
            Json::Float(executed as f64 / requested.max(1) as f64),
        ),
        ("coalesced_steps".to_owned(), Json::UInt(stats.coalesced)),
        ("memo_hits".to_owned(), Json::UInt(stats.hits)),
        ("requests".to_owned(), Json::UInt(total as u64)),
        (
            "requests_per_sec".to_owned(),
            Json::Float(total as f64 / secs.max(1e-9)),
        ),
    ])
}

/// `--quick`: prove the committed full artifact is intact without paying
/// for (or clobbering it with) the full sweep.
fn validate_committed_artifact(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("committed {} unreadable: {e}", path.display()));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("committed {} is not valid JSON: {e}", path.display()));
    for field in ["bench", "tenants", "memo_solo_cold", "memo_shared_cold", "levels"] {
        assert!(doc.get(field).is_some(), "artifact is missing `{field}`");
    }
    let env = doc.get("env").and_then(|e| e.as_object()).expect("artifact carries `env`");
    assert!(
        env.iter().any(|(k, _)| k == "oversubscribed"),
        "env must record the oversubscription flag"
    );
    let coalescing = doc
        .get("coalescing")
        .and_then(|c| c.as_object())
        .expect("artifact carries a `coalescing` object");
    for mode in ["on", "off"] {
        let section = coalescing
            .iter()
            .find(|(k, _)| k == mode)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("coalescing comparison is missing `{mode}`"));
        for field in [
            "requested_steps",
            "executed_steps",
            "executed_ratio",
            "coalesced_steps",
            "requests_per_sec",
        ] {
            assert!(section.get(field).is_some(), "coalescing.{mode} is missing `{field}`");
        }
    }
    println!("committed {} validated: schema intact", path.display());
}

fn main() {
    let quick = quick_mode();
    // Requests are Execute-only (no LLM in the hot path), so a small
    // finetune corpus keeps the one-off bootstrap cheap.
    let (core, _) =
        SessionCore::bootstrap(ChatGraphConfig::default(), 96).expect("default config is valid");

    // Step coalescing, on vs off: the duplicate-heavy workload where every
    // tenant submits identical chains over identical graphs. Executed
    // steps are the misses that actually ran (misses − coalesced).
    let iters = if quick { 1 } else { DEDUP_ITERS };
    let (on_stats, on_total, on_secs) = run_dedup(&core, true, iters);
    let (off_stats, off_total, off_secs) = run_dedup(&core, false, iters);
    let report = |label: &str, stats: &MemoStats, total: usize, secs: f64| {
        println!(
            "coalescing {label}: {} requested steps, {} executed (ratio {:.3}), \
             {} coalesced, {:.0} req/s",
            stats.requested(),
            stats.executed(),
            stats.executed() as f64 / stats.requested().max(1) as f64,
            stats.coalesced,
            total as f64 / secs.max(1e-9),
        );
    };
    report("on ", &on_stats, on_total, on_secs);
    report("off", &off_stats, off_total, off_secs);
    // Exactly-once makes this timing-independent: once a unique key is
    // executed, every later duplicate is a flight share or a memo hit.
    let on_ratio = on_stats.executed() as f64 / on_stats.requested().max(1) as f64;
    assert!(
        on_ratio < 0.6,
        "duplicate-heavy workload must dedup below 0.6 executed/requested, got {on_ratio:.3}"
    );
    assert!(on_stats.coalesced > 0, "concurrent duplicates must coalesce: {on_stats:?}");
    assert_eq!(off_stats.coalesced, 0, "coalescing off must never park a claim");

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_serving.json");
    if quick {
        // The quick run is a smoke test of the coalescing tier; the
        // committed artifact stays the authoritative full record.
        validate_committed_artifact(&path);
        return;
    }

    // Cross-session memo measurement: one cold round, solo vs shared.
    // Solo mode runs the identical workload on private caches.
    let solo = build_server(&core, 2, false);
    let (_, _, _) = run_workload(&solo, 1);
    let solo_stats = private_memo_stats(&solo);
    assert_eq!(solo.memo_stats().hits, 0, "solo mode must not touch the shared memo");

    let shared_cold = build_server(&core, 2, true);
    let (_, _, _) = run_workload(&shared_cold, 1);
    let shared_stats = shared_cold.memo_stats();
    println!(
        "cold round memo hit rate: solo {:.3} vs shared {:.3} ({} cross-session hits)",
        solo_stats.hit_rate(),
        shared_stats.hit_rate(),
        shared_stats.hits
    );

    // Sustained throughput at three pool widths, shared caches on.
    let mut levels: Vec<Json> = Vec::new();
    for pool_workers in [1usize, 2, 4] {
        let server = build_server(&core, pool_workers, true);
        run_workload(&server, 1); // warmup: caches hot, pool exercised
        let (total, secs, latencies) = run_workload(&server, ROUNDS);
        let requests_per_sec = total as f64 / secs.max(1e-9);
        let sessions_per_sec = (TENANTS * ROUNDS) as f64 / secs.max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p95 = percentile(&latencies, 0.95);
        println!(
            "pool_workers={pool_workers}: {requests_per_sec:.0} req/s, \
             {sessions_per_sec:.1} sessions/s, p50 {p50}us, p95 {p95}us"
        );
        levels.push(Json::Object(vec![
            ("pool_workers".to_owned(), Json::UInt(pool_workers as u64)),
            ("requests".to_owned(), Json::UInt(total as u64)),
            ("requests_per_sec".to_owned(), Json::Float(requests_per_sec)),
            ("sessions_per_sec".to_owned(), Json::Float(sessions_per_sec)),
            ("p50_latency_micros".to_owned(), Json::UInt(p50)),
            ("p95_latency_micros".to_owned(), Json::UInt(p95)),
        ]));
    }

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("serving".to_owned())),
        ("tenants".to_owned(), Json::UInt(TENANTS as u64)),
        ("rounds".to_owned(), Json::UInt(ROUNDS as u64)),
        (
            "requests_per_tenant_per_round".to_owned(),
            Json::UInt(tenant_requests().len() as u64),
        ),
        ("env".to_owned(), env_json(MAX_POOL_WORKERS)),
        memo_json("memo_solo_cold", &solo_stats),
        memo_json("memo_shared_cold", &shared_stats),
        (
            "cross_session_memo_hits".to_owned(),
            Json::UInt(shared_stats.hits),
        ),
        (
            "coalescing".to_owned(),
            Json::Object(vec![
                ("pool_workers".to_owned(), Json::UInt(MAX_POOL_WORKERS as u64)),
                ("iterations".to_owned(), Json::UInt(DEDUP_ITERS as u64)),
                ("on".to_owned(), coalescing_json(&on_stats, on_total, on_secs)),
                ("off".to_owned(), coalescing_json(&off_stats, off_total, off_secs)),
            ]),
        ),
        ("levels".to_owned(), Json::Array(levels)),
    ]);
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
