//! Multi-tenant serving bench: a seeded open-loop workload over the
//! [`SessionServer`] shared worker pool, solo-vs-shared cache modes, at
//! several pool widths. Writes `results/BENCH_serving.json` with
//! requests/sec, sessions/sec, p50/p95 chain latency (queue wait
//! included), and the cross-session memo hit rates.

use chatgraph_apis::{ApiCall, ApiChain, MemoStats};
use chatgraph_bench::{available_cpus, env_json};
use chatgraph_core::serve::{Request, ServeConfig, SessionServer};
use chatgraph_core::session::SessionCore;
use chatgraph_core::ChatGraphConfig;
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::Graph;
use chatgraph_support::json::Json;
use std::sync::Arc;
use std::time::Instant;

const TENANTS: usize = 8;
const ROUNDS: usize = 4;

fn tenant_graph(i: usize) -> Graph {
    // Four distinct graphs across eight tenants: each graph is shared by
    // exactly two tenants, the cross-session cache-sharing case.
    social_network(
        &SocialParams {
            communities: 4,
            community_size: 30,
            p_intra: 0.3,
            p_inter: 0.02,
        },
        (i % 4) as u64 + 11,
    )
}

fn tenant_requests() -> Vec<Request> {
    // Read-heavy analysis chains, no within-tenant repetition: a memo hit
    // in a single cold round can only come from another tenant.
    [
        vec![("top_pagerank", "5")],
        vec![("detect_communities", "5")],
        vec![("clustering_coefficient", "5")],
        vec![("triangle_count", "5")],
        vec![("largest_component", "5"), ("node_count", "5")],
        vec![("modularity_score", "5")],
    ]
    .into_iter()
    .map(|calls| {
        let mut chain = ApiChain::new();
        for (api, k) in calls {
            chain.push(ApiCall::new(api).with_param("k", k));
        }
        Request::Execute(chain)
    })
    .collect()
}

fn build_server(core: &Arc<SessionCore>, pool_workers: usize, shared: bool) -> SessionServer {
    let server = SessionServer::from_core(
        Arc::clone(core),
        ServeConfig {
            pool_workers,
            shared_memo: shared,
            shared_csr: shared,
            queue_depth: 64,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    for i in 0..TENANTS {
        let t = server.open_session().expect("capacity");
        server
            .with_session(t, |s| s.set_graph(tenant_graph(i)))
            .expect("fresh tenant");
    }
    server
}

fn percentile(sorted_micros: &[u64], p: f64) -> u64 {
    if sorted_micros.is_empty() {
        return 0;
    }
    let idx = ((sorted_micros.len() - 1) as f64 * p).round() as usize;
    sorted_micros[idx]
}

/// Submits `rounds` full workloads and drains them, returning
/// (total requests, drain seconds, sorted latencies in µs).
fn run_workload(server: &SessionServer, rounds: usize) -> (usize, f64, Vec<u64>) {
    let requests = tenant_requests();
    let tenants = server.tenants();
    let mut latencies = Vec::new();
    let mut total = 0usize;
    let mut secs = 0.0f64;
    for _ in 0..rounds {
        for t in &tenants {
            for req in &requests {
                server.submit(*t, req.clone()).expect("queue has room");
            }
        }
        let start = Instant::now();
        let completed = server.drain();
        secs += start.elapsed().as_secs_f64();
        total += completed.len();
        for c in &completed {
            assert!(c.reply.is_ok(), "workload must serve cleanly");
            latencies.push(c.latency_micros);
        }
    }
    latencies.sort_unstable();
    (total, secs, latencies)
}

/// Per-session memo stats aggregated across tenants (the solo-mode
/// counterpart of the server's shared-memo stats).
fn private_memo_stats(server: &SessionServer) -> MemoStats {
    server
        .tenants()
        .into_iter()
        .fold(MemoStats { hits: 0, misses: 0 }, |acc, t| {
            let s = server
                .with_session(t, |s| s.memo_handle().stats())
                .expect("tenant is healthy");
            MemoStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
            }
        })
}

fn memo_json(label: &str, stats: &MemoStats) -> (String, Json) {
    (
        label.to_owned(),
        Json::Object(vec![
            ("hits".to_owned(), Json::UInt(stats.hits)),
            ("misses".to_owned(), Json::UInt(stats.misses)),
            ("hit_rate".to_owned(), Json::Float(stats.hit_rate())),
        ]),
    )
}

fn main() {
    // Requests are Execute-only (no LLM in the hot path), so a small
    // finetune corpus keeps the one-off bootstrap cheap.
    let (core, _) =
        SessionCore::bootstrap(ChatGraphConfig::default(), 96).expect("default config is valid");

    // Cross-session memo measurement: one cold round, solo vs shared.
    // Solo mode runs the identical workload on private caches.
    let solo = build_server(&core, 2, false);
    let (_, _, _) = run_workload(&solo, 1);
    let solo_stats = private_memo_stats(&solo);
    assert_eq!(solo.memo_stats().hits, 0, "solo mode must not touch the shared memo");

    let shared_cold = build_server(&core, 2, true);
    let (_, _, _) = run_workload(&shared_cold, 1);
    let shared_stats = shared_cold.memo_stats();
    println!(
        "cold round memo hit rate: solo {:.3} vs shared {:.3} ({} cross-session hits)",
        solo_stats.hit_rate(),
        shared_stats.hit_rate(),
        shared_stats.hits
    );

    // Sustained throughput at three pool widths, shared caches on.
    let mut levels: Vec<Json> = Vec::new();
    for pool_workers in [1usize, 2, 4] {
        let server = build_server(&core, pool_workers, true);
        run_workload(&server, 1); // warmup: caches hot, pool exercised
        let (total, secs, latencies) = run_workload(&server, ROUNDS);
        let requests_per_sec = total as f64 / secs.max(1e-9);
        let sessions_per_sec = (TENANTS * ROUNDS) as f64 / secs.max(1e-9);
        let p50 = percentile(&latencies, 0.50);
        let p95 = percentile(&latencies, 0.95);
        println!(
            "pool_workers={pool_workers}: {requests_per_sec:.0} req/s, \
             {sessions_per_sec:.1} sessions/s, p50 {p50}us, p95 {p95}us"
        );
        levels.push(Json::Object(vec![
            ("pool_workers".to_owned(), Json::UInt(pool_workers as u64)),
            ("requests".to_owned(), Json::UInt(total as u64)),
            ("requests_per_sec".to_owned(), Json::Float(requests_per_sec)),
            ("sessions_per_sec".to_owned(), Json::Float(sessions_per_sec)),
            ("p50_latency_micros".to_owned(), Json::UInt(p50)),
            ("p95_latency_micros".to_owned(), Json::UInt(p95)),
        ]));
    }

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("serving".to_owned())),
        ("tenants".to_owned(), Json::UInt(TENANTS as u64)),
        ("rounds".to_owned(), Json::UInt(ROUNDS as u64)),
        (
            "requests_per_tenant_per_round".to_owned(),
            Json::UInt(tenant_requests().len() as u64),
        ),
        ("env".to_owned(), env_json(available_cpus())),
        memo_json("memo_solo_cold", &solo_stats),
        memo_json("memo_shared_cold", &shared_stats),
        (
            "cross_session_memo_hits".to_owned(),
            Json::UInt(shared_stats.hits),
        ),
        ("levels".to_owned(), Json::Array(levels)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_serving.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
