//! CSR graph-kernel bench: for each kernel, the adjacency-walking reference
//! vs the CSR kernel sequentially vs the CSR kernel on 4 workers, plus the
//! epoch-cache comparison (rebuilding the CSR snapshot per call vs serving
//! it from [`CsrCache`]). Writes `results/BENCH_graph_kernels.json`.

use chatgraph_bench::{env_json, record_stats as record};
use chatgraph_graph::csr::{CsrCache, CsrGraph};
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::kernels::{self, reference, KernelPolicy};
use chatgraph_support::bench::Bench;
use chatgraph_support::json::Json;
use std::hint::black_box;
use std::sync::Arc;

const WORKERS: usize = 4;

fn main() {
    // The plan-exec scenario graph: large enough that the path-based
    // kernels dominate thread-pool overhead.
    let graph = Arc::new(social_network(
        &SocialParams {
            communities: 6,
            community_size: 50,
            p_intra: 0.3,
            p_inter: 0.01,
        },
        42,
    ));
    let csr = CsrGraph::build(&graph);
    let seq = KernelPolicy::new(1, 1024);
    let par = KernelPolicy::new(WORKERS, 1024);

    let mut results: Vec<(String, Json)> = Vec::new();
    let mut bench = Bench::new("graph_kernels");
    let mut group = bench.group("graph_kernels");

    macro_rules! kernel {
        ($name:literal, $reference:expr, $kernel:expr) => {{
            let reference = $reference;
            record(
                &mut results,
                concat!($name, "_reference"),
                group.bench(concat!($name, "_reference"), || {
                    black_box(reference(&graph));
                }),
            );
            let kernel = $kernel;
            record(
                &mut results,
                concat!($name, "_csr_seq"),
                group.bench(concat!($name, "_csr_seq"), || {
                    black_box(kernel(&csr, &seq));
                }),
            );
            record(
                &mut results,
                concat!($name, "_csr_par"),
                group.bench(concat!($name, "_csr_par"), || {
                    black_box(kernel(&csr, &par));
                }),
            );
        }};
    }

    kernel!(
        "pagerank",
        |g: &chatgraph_graph::Graph| reference::pagerank_reference(g, 0.85, 50),
        |csr: &CsrGraph, p: &KernelPolicy| kernels::pagerank(csr, 0.85, 50, p)
    );
    kernel!(
        "components",
        |g: &chatgraph_graph::Graph| reference::connected_components_reference(g).count,
        |csr: &CsrGraph, p: &KernelPolicy| kernels::connected_components(csr, p).count
    );
    kernel!(
        "triangles",
        reference::triangle_count_reference,
        kernels::triangle_count
    );
    kernel!(
        "closeness",
        reference::closeness_reference,
        kernels::closeness
    );
    kernel!("diameter", reference::diameter_reference, kernels::diameter);
    kernel!(
        "graph_stats",
        reference::graph_stats_reference,
        |csr: &CsrGraph, p: &KernelPolicy| kernels::graph_stats(&graph, csr, p)
    );

    // The epoch cache: rebuilding the snapshot on every call vs serving the
    // same mutation epoch from the pointer-keyed cache.
    let build_stats = group.bench("csr_build_per_call", || {
        black_box(CsrGraph::build(&graph).m());
    });
    record(&mut results, "csr_build_per_call", build_stats);
    let cache = CsrCache::default();
    cache.get_or_build(&graph);
    let cached_stats = group.bench("csr_epoch_cached", || {
        black_box(cache.get_or_build(&graph).m());
    });
    record(&mut results, "csr_epoch_cached", cached_stats);

    let cached_speedup =
        build_stats.median.as_nanos() as f64 / cached_stats.median.as_nanos().max(1) as f64;
    println!("\nepoch-cached CSR vs per-call rebuild (median): {cached_speedup:.1}x");

    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("graph_kernels".to_owned())),
        ("graph_nodes".to_owned(), Json::UInt(graph.node_count() as u64)),
        ("graph_edges".to_owned(), Json::UInt(graph.edge_count() as u64)),
        ("env".to_owned(), env_json(WORKERS)),
        ("cached_csr_speedup_median".to_owned(), Json::Float(cached_speedup)),
        (
            "cached_beats_rebuild".to_owned(),
            Json::Bool(cached_stats.median < build_stats.median),
        ),
        ("results".to_owned(), Json::Object(results)),
    ]);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_graph_kernels.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
