//! Timing benches for the chain-generation pipeline: feature extraction,
//! search-based prediction, and greedy decoding.

use chatgraph_apis::registry;
use chatgraph_core::finetune::build_examples;
use chatgraph_core::generation::candidate_apis;
use chatgraph_core::{
    generate_corpus, ApiRetriever, ChainGenerator, ChatGraphConfig, CorpusParams, FinetuneMethod,
    GraphAwareLm,
};
use chatgraph_support::bench::Bench;
use std::hint::black_box;

fn main() {
    let config = ChatGraphConfig::default();
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let lm = GraphAwareLm::new(&reg, &config);
    let corpus = generate_corpus(&CorpusParams { size: 16, small_graphs: true }, 3);
    let one = &corpus[..1];

    let mut bench = Bench::new("chain_generation");
    let mut group = bench.group("chain_generation");
    group.bench("context_features", || {
        black_box(lm.context(black_box(&corpus[0].question), Some(&corpus[0].graph)));
    });
    group.bench("search_based_prediction_one_question", || {
        black_box(
            build_examples(
                black_box(&lm),
                &reg,
                &retriever,
                one,
                FinetuneMethod::Full,
                &config,
            )
            .len(),
        );
    });
    let gen = ChainGenerator::default();
    let cands = candidate_apis(&reg, &retriever, &corpus[0].question, Some(&corpus[0].graph));
    group.bench("greedy_decode", || {
        black_box(
            gen.generate_greedy(
                &lm,
                &corpus[0].question,
                Some(&corpus[0].graph),
                &cands,
            )
            .len(),
        );
    });
}
