//! Criterion benches for the chain-generation pipeline: feature extraction,
//! search-based prediction, and greedy decoding.

use chatgraph_apis::registry;
use chatgraph_core::finetune::build_examples;
use chatgraph_core::generation::candidate_apis;
use chatgraph_core::{
    generate_corpus, ApiRetriever, ChainGenerator, ChatGraphConfig, CorpusParams, FinetuneMethod,
    GraphAwareLm,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let config = ChatGraphConfig::default();
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let lm = GraphAwareLm::new(&reg, &config);
    let corpus = generate_corpus(&CorpusParams { size: 16, small_graphs: true }, 3);
    let one = &corpus[..1];

    let mut group = c.benchmark_group("chain_generation");
    group.bench_function("context_features", |b| {
        b.iter(|| lm.context(black_box(&corpus[0].question), Some(&corpus[0].graph)))
    });
    group.bench_function("search_based_prediction_one_question", |b| {
        b.iter(|| {
            build_examples(
                black_box(&lm),
                &reg,
                &retriever,
                one,
                FinetuneMethod::Full,
                &config,
            )
            .len()
        })
    });
    let gen = ChainGenerator::default();
    let cands = candidate_apis(&reg, &retriever, &corpus[0].question, Some(&corpus[0].graph));
    group.bench_function("greedy_decode", |b| {
        b.iter(|| {
            gen.generate_greedy(
                black_box(&lm),
                &corpus[0].question,
                Some(&corpus[0].graph),
                &cands,
            )
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
