//! Criterion benches for the API retrieval module (embedding + τ-MG lookup).

use chatgraph_apis::registry;
use chatgraph_core::config::RetrievalConfig;
use chatgraph_core::ApiRetriever;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_retrieval(c: &mut Criterion) {
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &RetrievalConfig::default());
    let queries = [
        "what communities are in this social network",
        "predict how toxic this molecule is",
        "find similar molecules in the database",
        "clean the knowledge graph",
    ];
    let mut group = c.benchmark_group("retrieval");
    group.bench_function("build", |b| {
        b.iter(|| ApiRetriever::build(black_box(&reg), &RetrievalConfig::default()).len())
    });
    group.bench_function("embed_prompt", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            retriever.embed(black_box(queries[i]))
        })
    });
    group.bench_function("retrieve_top10", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            retriever.retrieve(black_box(queries[i]))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
