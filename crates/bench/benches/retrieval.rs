//! Timing benches for the API retrieval module (embedding + τ-MG lookup).

use chatgraph_apis::registry;
use chatgraph_core::config::RetrievalConfig;
use chatgraph_core::ApiRetriever;
use chatgraph_support::bench::Bench;
use std::hint::black_box;

fn main() {
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &RetrievalConfig::default());
    let queries = [
        "what communities are in this social network",
        "predict how toxic this molecule is",
        "find similar molecules in the database",
        "clean the knowledge graph",
    ];
    let mut bench = Bench::new("retrieval");
    let mut group = bench.group("retrieval");
    group.bench("build", || {
        black_box(ApiRetriever::build(black_box(&reg), &RetrievalConfig::default()).len());
    });
    let mut i = 0;
    group.bench("embed_prompt", || {
        i = (i + 1) % queries.len();
        black_box(retriever.embed(black_box(queries[i])));
    });
    let mut i = 0;
    group.bench("retrieve_top10", || {
        i = (i + 1) % queries.len();
        black_box(retriever.retrieve(black_box(queries[i])));
    });
}
