//! Scale sweep: 10^3 / 10^4 / 10^5 / 10^6-node graphs × 1 / 2 / 4 workers.
//!
//! For every tier this records, in `results/BENCH_scale.json`:
//!
//! * the **parallel-vs-sequential crossover** of an iterated CSR kernel
//!   (pagerank under degree-weighted chunking) — on an oversubscribed
//!   machine (workers > cpus, see the `env` block) parallel timings
//!   measure scheduling overhead and the crossover legitimately never
//!   happens; the artifact says so instead of pretending;
//! * the **delta-CSR vs rebuild ratio** for a single-edit mutation epoch —
//!   the row-splice patch must beat the from-scratch rebuild by an order
//!   of magnitude from the 10^5 tier up.
//!
//! `--quick` runs only the 10^3/10^4 tiers and, instead of overwriting the
//! committed full artifact, validates that `results/BENCH_scale.json`
//! parses and carries all four tiers — the CI-sized proof that the
//! committed sweep is intact.

use chatgraph_bench::{env_json, print_table, quick_mode};
use chatgraph_graph::csr::CsrGraph;
use chatgraph_graph::generators::{social_network, SocialParams};
use chatgraph_graph::kernels::{self, ChunkStrategy, KernelPolicy};
use chatgraph_graph::NodeId;
use chatgraph_support::bench::{format_duration, Bench, Stats};
use chatgraph_support::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

const WORKER_SWEEP: [usize; 3] = [1, 2, 4];
const PAGERANK_ITERS: usize = 10;
const TIERS: [(usize, &str, u32); 4] = [
    (1_000, "n1000", 20),
    (10_000, "n10000", 10),
    (100_000, "n100000", 5),
    (1_000_000, "n1000000", 2),
];

fn median_ns(stats: &Stats) -> u64 {
    stats.median.as_nanos() as u64
}

/// Runs one tier and returns its JSON record plus a display row.
fn run_tier(n: usize, label: &str, iters: u32) -> (Json, Vec<String>) {
    let t0 = Instant::now();
    let graph = social_network(&SocialParams::sized(n), 42);
    let gen_elapsed = t0.elapsed();
    let csr = CsrGraph::build(&graph);
    println!(
        "\n# tier {label}: {} nodes, {} edges (generated in {})",
        graph.node_count(),
        graph.edge_count(),
        format_duration(gen_elapsed)
    );

    let mut bench = Bench::new("scale_sweep").with_iters(iters);
    let mut group = bench.group(label);

    // Parallel-vs-sequential: the iterated pull kernel under the same
    // degree-weighted chunking the scheduler uses.
    let mut pagerank_ns: Vec<(String, Json)> = Vec::new();
    let mut medians: Vec<(usize, u64)> = Vec::new();
    for workers in WORKER_SWEEP {
        let policy = KernelPolicy::new(workers, 1024).with_strategy(ChunkStrategy::DegreeWeighted);
        let stats = group.bench(&format!("pagerank_{workers}w"), || {
            black_box(kernels::pagerank(&csr, 0.85, PAGERANK_ITERS, &policy));
        });
        pagerank_ns.push((workers.to_string(), Json::UInt(median_ns(&stats))));
        medians.push((workers, median_ns(&stats)));
    }
    let seq_ns = medians[0].1;
    let crossover = medians
        .iter()
        .find(|&&(w, ns)| w > 1 && ns < seq_ns)
        .map_or(0, |&(w, _)| w);

    // Delta-CSR vs rebuild: one added edge, then patch vs from-scratch.
    let old = graph.clone();
    let mut edited = graph.clone();
    let nodes: Vec<NodeId> = edited.node_ids().take(2).collect();
    edited.add_edge(nodes[0], nodes[1], "patched").ok();
    let rebuild_stats = group.bench("csr_rebuild", || {
        black_box(CsrGraph::build(&edited).m());
    });
    let delta_stats = group.bench("csr_delta_patch", || {
        black_box(
            CsrGraph::build_delta(&old, &csr, &edited)
                .expect("a single added edge always patches")
                .m(),
        );
    });
    let delta_ratio =
        median_ns(&rebuild_stats) as f64 / median_ns(&delta_stats).max(1) as f64;
    println!("{label}: delta patch is {delta_ratio:.1}x cheaper than rebuild");

    let tier = Json::Object(vec![
        ("nodes".to_owned(), Json::UInt(graph.node_count() as u64)),
        ("edges".to_owned(), Json::UInt(graph.edge_count() as u64)),
        ("gen_micros".to_owned(), Json::UInt(gen_elapsed.as_micros() as u64)),
        ("pagerank_median_ns_by_workers".to_owned(), Json::Object(pagerank_ns)),
        ("crossover_workers".to_owned(), Json::UInt(crossover as u64)),
        ("parallel_beats_sequential".to_owned(), Json::Bool(crossover > 0)),
        ("csr_rebuild_median_ns".to_owned(), Json::UInt(median_ns(&rebuild_stats))),
        ("csr_delta_median_ns".to_owned(), Json::UInt(median_ns(&delta_stats))),
        ("delta_vs_rebuild_ratio".to_owned(), Json::Float(delta_ratio)),
        ("delta_10x_cheaper".to_owned(), Json::Bool(delta_ratio >= 10.0)),
    ]);
    let row = vec![
        label.to_owned(),
        graph.node_count().to_string(),
        graph.edge_count().to_string(),
        format_duration(Duration::from_nanos(medians[0].1)),
        format_duration(Duration::from_nanos(medians[1].1)),
        format_duration(Duration::from_nanos(medians[2].1)),
        if crossover > 0 { format!("{crossover}w") } else { "never".to_owned() },
        format!("{delta_ratio:.1}x"),
    ];
    (tier, row)
}

/// `--quick`: prove the committed full artifact is intact without paying
/// for (or clobbering it with) the 10^5/10^6 tiers.
fn validate_committed_artifact(path: &std::path::Path) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("committed {} unreadable: {e}", path.display()));
    let doc = Json::parse(&text)
        .unwrap_or_else(|e| panic!("committed {} is not valid JSON: {e}", path.display()));
    let tiers = doc
        .get("tiers")
        .and_then(|t| t.as_object())
        .expect("artifact carries a `tiers` object");
    for (_, name, _) in TIERS {
        let tier = tiers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("committed artifact is missing tier {name}"));
        for field in [
            "nodes",
            "pagerank_median_ns_by_workers",
            "parallel_beats_sequential",
            "delta_vs_rebuild_ratio",
        ] {
            assert!(tier.get(field).is_some(), "tier {name} is missing `{field}`");
        }
    }
    println!(
        "committed {} validated: all {} tiers present and well-formed",
        path.display(),
        TIERS.len()
    );
}

fn main() {
    let quick = quick_mode();
    let max_workers = *WORKER_SWEEP.iter().max().unwrap();
    let env = env_json(max_workers);

    let mut tiers: Vec<(String, Json)> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (n, label, iters) in TIERS {
        if quick && n > 10_000 {
            println!("\n# tier {label}: skipped (--quick)");
            continue;
        }
        let (tier, row) = run_tier(n, label, iters);
        tiers.push((label.to_owned(), tier));
        rows.push(row);
    }

    print_table(
        "scale sweep (pagerank median by workers; delta vs rebuild)",
        &["tier", "nodes", "edges", "1w", "2w", "4w", "crossover", "delta"],
        &rows,
    );

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("results/BENCH_scale.json");
    if quick {
        // The quick sweep is a smoke test; the committed artifact stays the
        // authoritative full-sweep record.
        validate_committed_artifact(&path);
        return;
    }
    let doc = Json::Object(vec![
        ("bench".to_owned(), Json::Str("scale_sweep".to_owned())),
        ("pagerank_iterations".to_owned(), Json::UInt(PAGERANK_ITERS as u64)),
        ("env".to_owned(), env),
        ("tiers".to_owned(), Json::Object(tiers)),
    ]);
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write {}: {e}", path.display()),
    }
}
