//! Timing benches for the graph sequentialiser (experiment E5's timing
//! side): path cover as ℓ grows, super-graph contraction, serialisation.

use chatgraph_graph::generators::{barabasi_albert, BaParams};
use chatgraph_sequencer::{build_supergraph, path_cover, sequentialize, CoverParams};
use chatgraph_support::bench::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::new("seq_path_cover");
    let mut group = bench.group("sequencer");
    let g = barabasi_albert(&BaParams { nodes: 200, attach: 2 }, 5);
    for l in 1..=4usize {
        let params = CoverParams { max_length: l, dedup_singletons: true };
        group.bench(&format!("path_cover_l/{l}"), || {
            black_box(path_cover(black_box(&g), &params).len());
        });
    }
    group.bench("supergraph_200", || {
        black_box(build_supergraph(black_box(&g), 3).motif_count);
    });
    let params = CoverParams { max_length: 2, dedup_singletons: true };
    group.bench("sequentialize_multi_level_200", || {
        black_box(sequentialize(black_box(&g), &params, true).token_count());
    });
}
