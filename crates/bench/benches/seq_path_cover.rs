//! Criterion benches for the graph sequentialiser (experiment E5's timing
//! side): path cover as ℓ grows, super-graph contraction, serialisation.

use chatgraph_graph::generators::{barabasi_albert, BaParams};
use chatgraph_sequencer::{build_supergraph, path_cover, sequentialize, CoverParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sequencer(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequencer");
    let g = barabasi_albert(&BaParams { nodes: 200, attach: 2 }, 5);
    for l in 1..=4usize {
        let params = CoverParams { max_length: l, dedup_singletons: true };
        group.bench_with_input(BenchmarkId::new("path_cover_l", l), &params, |b, p| {
            b.iter(|| path_cover(black_box(&g), p).len())
        });
    }
    group.bench_function("supergraph_200", |b| {
        b.iter(|| build_supergraph(black_box(&g), 3).motif_count)
    });
    let params = CoverParams { max_length: 2, dedup_singletons: true };
    group.bench_function("sequentialize_multi_level_200", |b| {
        b.iter(|| sequentialize(black_box(&g), &params, true).token_count())
    });
    group.finish();
}

criterion_group!(benches, bench_sequencer);
criterion_main!(benches);
