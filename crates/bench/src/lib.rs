//! # chatgraph-bench
//!
//! Benchmark harness for the ChatGraph reproduction.
//!
//! Two kinds of targets live here:
//!
//! * **Criterion micro-benchmarks** (`benches/`) timing the hot paths: graph
//!   algorithms, GED, the sequentialiser, ANN search, retrieval and chain
//!   generation.
//! * **Experiment binaries** (`src/bin/exp_*.rs`) that regenerate every
//!   table/figure-equivalent of the paper, printing the same rows/series the
//!   evaluation discusses. EXPERIMENTS.md records their output against the
//!   paper's claims. Each binary accepts `--quick` for a reduced sweep.
//!
//! This library crate only holds small shared helpers.

use chatgraph_support::bench::Stats;
use chatgraph_support::json::Json;
use std::fmt::Display;

/// Records one timed result under `label` in a bench results object: the
/// median/p95/min nanoseconds and the iteration count.
pub fn record_stats(out: &mut Vec<(String, Json)>, label: &str, stats: Stats) {
    out.push((
        label.to_owned(),
        Json::Object(vec![
            ("median_ns".to_owned(), Json::UInt(stats.median.as_nanos() as u64)),
            ("p95_ns".to_owned(), Json::UInt(stats.p95.as_nanos() as u64)),
            ("min_ns".to_owned(), Json::UInt(stats.min.as_nanos() as u64)),
            ("iters".to_owned(), Json::UInt(stats.iters as u64)),
        ]),
    ));
}

/// The machine's available parallelism (1 when it cannot be queried).
pub fn available_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Execution-environment block embedded in every `BENCH_*.json`: the
/// machine's available parallelism, the worker count the bench was
/// configured with, and whether that oversubscribes the machine. Without
/// these, a "4-worker" result measured on a single-CPU runner reads as a
/// parallelism regression. Oversubscription also warns on stderr so it is
/// visible at run time, not only in the artifact.
pub fn env_json(workers: usize) -> Json {
    let cpus = available_cpus();
    let oversubscribed = workers > cpus;
    if oversubscribed {
        eprintln!(
            "warning: benchmarking {workers} workers on {cpus} available cpu(s) — \
             parallel timings measure scheduling overhead, not speedup \
             (recorded as \"oversubscribed\":true)"
        );
    }
    Json::Object(vec![
        ("cpus".to_owned(), Json::UInt(cpus as u64)),
        ("workers".to_owned(), Json::UInt(workers as u64)),
        ("oversubscribed".to_owned(), Json::Bool(oversubscribed)),
    ])
}

/// Renders an aligned text table for experiment output.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n## {title}\n");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| r.iter().map(|c| c.to_string()).collect())
        .collect();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(cell.len());
            } else {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&headers));
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    for row in &rows {
        println!("{}", fmt_row(row));
    }
}

/// True when `--quick` was passed (smaller sweeps for CI).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_without_panicking() {
        print_table("t", &["a", "b"], &[vec!["1", "22"], vec!["333", "4"]]);
    }
}
