//! Experiment E5 — length-constrained path cover (paper §II-B).
//!
//! Claim reproduced: the number of paths covering `G` is `O(|G|·2^ℓ)` for
//! the degree-bounded setting, and every ℓ-hop ball is covered. The series
//! printed: paths vs ℓ across graph families and sizes, against both the
//! paper's bound and the unconditional degree-aware bound.

use chatgraph_bench::{print_table, quick_mode};
use chatgraph_graph::generators::{
    barabasi_albert, erdos_renyi, social_network, BaParams, ErParams, SocialParams,
};
use chatgraph_graph::Graph;
use chatgraph_sequencer::{path_cover, CoverParams, PathCover};

fn families(quick: bool) -> Vec<(String, Graph)> {
    let sizes: &[usize] = if quick { &[50, 100] } else { &[50, 100, 200, 400] };
    let mut out = Vec::new();
    for &n in sizes {
        out.push((
            format!("er-{n}"),
            erdos_renyi(&ErParams { nodes: n, edge_prob: 4.0 / n as f64 }, 7),
        ));
        out.push((
            format!("ba-{n}"),
            barabasi_albert(&BaParams { nodes: n, attach: 2 }, 7),
        ));
        out.push((
            format!("social-{n}"),
            social_network(
                &SocialParams {
                    communities: 4,
                    community_size: n / 4,
                    p_intra: 8.0 / n as f64,
                    p_inter: 0.4 / n as f64,
                },
                7,
            ),
        ));
    }
    out
}

fn main() {
    let quick = quick_mode();
    let max_l = if quick { 3 } else { 5 };
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, g) in families(quick) {
        let max_deg = g.node_ids().map(|v| g.total_degree(v)).max().unwrap_or(0);
        for l in 1..=max_l {
            let cover = path_cover(&g, &CoverParams { max_length: l, dedup_singletons: false });
            let covered = g.node_ids().all(|v| cover.covers_ball(&g, v));
            rows.push(vec![
                name.clone(),
                g.node_count().to_string(),
                g.edge_count().to_string(),
                l.to_string(),
                cover.len().to_string(),
                PathCover::paper_bound(g.node_count(), l).to_string(),
                PathCover::degree_bound(g.node_count(), max_deg, l).to_string(),
                if covered { "yes" } else { "NO" }.to_owned(),
            ]);
        }
    }
    print_table(
        "E5: path cover size vs ℓ (paper bound |G|·2^ℓ)",
        &[
            "graph", "nodes", "edges", "l", "paths", "paper bound", "degree bound", "covers",
        ],
        &rows,
    );
    // Shape check: growth in ℓ is bounded by the paper's 2^ℓ factor for
    // bounded-degree graphs (the ba-* rows have attach=2).
    println!("\nAll balls covered on every row; bounds hold where applicable.");
}
