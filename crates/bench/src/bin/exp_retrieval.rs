//! Experiment E9 — API retrieval accuracy and efficiency (paper §II-A/D).
//!
//! Claims reproduced: the τ-MG ANN index returns (nearly) the same top-k API
//! set as exact brute force at a fraction of the distance computations, and
//! the relevant API for a question is retrieved in the top-k — "critical for
//! performance" per the paper.

use chatgraph_apis::registry;
use chatgraph_ann::SearchStats;
use chatgraph_bench::{print_table, quick_mode};
use chatgraph_core::{generate_corpus, ApiRetriever, ChatGraphConfig, CorpusParams};

fn main() {
    let quick = quick_mode();
    let n_questions = if quick { 64 } else { 200 };
    let reg = registry::standard();
    let config = ChatGraphConfig::default();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let corpus = generate_corpus(
        &CorpusParams { size: n_questions, small_graphs: true },
        31,
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    for &k in &[1usize, 5, 10] {
        let mut hit = 0usize;
        let mut overlap = 0usize;
        let mut ann_dc = 0usize;
        let mut exact_dc = 0usize;
        for e in &corpus {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let ann: Vec<String> = retriever
                .retrieve_k(&e.question, k, &mut s1)
                .into_iter()
                .map(|h| h.name)
                .collect();
            let exact: Vec<String> = retriever
                .retrieve_exact(&e.question, k, &mut s2)
                .into_iter()
                .map(|h| h.name)
                .collect();
            ann_dc += s1.distance_computations;
            exact_dc += s2.distance_computations;
            overlap += ann.iter().filter(|n| exact.contains(n)).count();
            // "Relevant API in top-k": any token of any equivalent truth.
            let relevant = e.truths.iter().any(|t| {
                t.api_names().iter().any(|api| ann.iter().any(|n| n == api))
            });
            if relevant {
                hit += 1;
            }
        }
        let n = corpus.len() as f64;
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", hit as f64 / n),
            format!("{:.3}", overlap as f64 / (n * k as f64)),
            format!("{:.1}", ann_dc as f64 / n),
            format!("{:.1}", exact_dc as f64 / n),
        ]);
    }
    print_table(
        "E9: retrieval — relevant-API hit rate and ANN fidelity",
        &["k", "hit rate", "ann/exact overlap", "ann dist comps", "exact dist comps"],
        &rows,
    );
    println!(
        "\nShape check: hit rate grows with k; ANN overlap with exact search\n\
         stays near 1 at no extra distance computations. Questions whose\n\
         wording shares no lexical stem with the needed API (e.g. 'write a\n\
         report' needing detect_communities) are the missing mass — the\n\
         graph-type candidate augmentation covers them downstream."
    );
}
