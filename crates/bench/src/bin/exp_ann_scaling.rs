//! Experiment E6 — τ-MG routing complexity (paper §II-D).
//!
//! Claim reproduced: greedy routing on τ-MG examines `O(n^(1/m)(ln n)²)`
//! nodes — sub-linear in `n` — versus the linear scan of a flat index, while
//! matching or beating comparable proximity graphs (MRNG, HNSW) on distance
//! computations at equal recall. Series: distance computations and recall@10
//! vs dataset size for each index.

use chatgraph_ann::dataset::{clustered, queries, ClusterParams};
use chatgraph_ann::{
    recall_at_k, AnnIndex, FlatIndex, Hnsw, HnswParams, Metric, SearchStats, TauMg, TauMgParams,
};
use chatgraph_bench::{print_table, quick_mode};

fn main() {
    let quick = quick_mode();
    let sizes: &[usize] = if quick {
        &[1000, 4000]
    } else {
        &[1000, 4000, 16000, 64000]
    };
    let n_queries = if quick { 32 } else { 100 };
    let k = 10;
    let mut rows: Vec<Vec<String>> = Vec::new();

    for &n in sizes {
        let params = ClusterParams { n, dim: 32, clusters: 40, noise: 0.06 };
        let data = clustered(&params, 11);
        let qs = queries(&params, n_queries, 11);
        let flat = FlatIndex::build(data.clone(), Metric::L2);
        let taumg = TauMg::build(data.clone(), TauMgParams::default());
        let mrng = TauMg::build_mrng(data.clone(), TauMgParams::default());
        let hnsw = Hnsw::build(data, HnswParams::default());

        let mut eval = |name: &str, index: &dyn AnnIndex| {
            let mut dc = 0usize;
            let mut hops = 0usize;
            let mut recall = 0.0;
            for q in &qs {
                let truth = flat.search(q, k, &mut SearchStats::default());
                let mut stats = SearchStats::default();
                let res = index.search(q, k, &mut stats);
                dc += stats.distance_computations;
                hops += stats.hops;
                recall += recall_at_k(&truth, &res, k);
            }
            rows.push(vec![
                n.to_string(),
                name.to_owned(),
                format!("{:.1}", dc as f64 / qs.len() as f64),
                format!("{:.1}", hops as f64 / qs.len() as f64),
                format!("{:.3}", recall / qs.len() as f64),
            ]);
        };
        eval("flat (exact)", &flat);
        eval("tau-mg", &taumg);
        eval("mrng (tau=0)", &mrng);
        eval("hnsw", &hnsw);
    }
    print_table(
        "E6: ANN scaling — avg distance computations / hops / recall@10 vs n",
        &["n", "index", "dist comps", "hops", "recall@10"],
        &rows,
    );

    // Recall-vs-computation curve at the largest size: the canonical ANN
    // comparison (each index sweeps its query beam width ef).
    let Some(&n) = sizes.last() else { return };
    let params = ClusterParams { n, dim: 32, clusters: 40, noise: 0.06 };
    let data = clustered(&params, 11);
    let qs = queries(&params, n_queries, 11);
    let flat = FlatIndex::build(data.clone(), Metric::L2);
    let taumg = TauMg::build(data.clone(), TauMgParams::default());
    let mrng = TauMg::build_mrng(data.clone(), TauMgParams::default());
    let hnsw = Hnsw::build(data, HnswParams::default());
    type SearchFn<'a> = &'a dyn Fn(&chatgraph_ann::Vector, &mut SearchStats) -> Vec<(usize, f32)>;
    let mut curve: Vec<Vec<String>> = Vec::new();
    for &ef in &[32usize, 64, 128, 256] {
        let mut eval = |name: &str, search: SearchFn| {
            let mut dc = 0usize;
            let mut recall = 0.0;
            for q in &qs {
                let truth = flat.search(q, k, &mut SearchStats::default());
                let mut stats = SearchStats::default();
                let res = search(q, &mut stats);
                dc += stats.distance_computations;
                recall += recall_at_k(&truth, &res, k);
            }
            curve.push(vec![
                ef.to_string(),
                name.to_owned(),
                format!("{:.1}", dc as f64 / qs.len() as f64),
                format!("{:.3}", recall / qs.len() as f64),
            ]);
        };
        eval("tau-mg", &|q, s| taumg.search_with_ef(q, k, ef, s));
        eval("mrng (tau=0)", &|q, s| mrng.search_with_ef(q, k, ef, s));
        eval("hnsw", &|q, s| hnsw.search_with_ef(q, k, ef, s));
    }
    print_table(
        &format!("E6b: recall-vs-computation at n={n} (ef sweep)"),
        &["ef", "index", "dist comps", "recall@10"],
        &curve,
    );
    println!(
        "\nShape check: flat grows linearly in n; the proximity graphs grow\n\
         sub-linearly (≈ n^(1/m)·polylog). At fixed n every proximity graph\n\
         reaches high recall with ef; tau-mg/mrng match or beat HNSW's\n\
         computation count at equal recall."
    );
}
