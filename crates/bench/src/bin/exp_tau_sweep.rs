//! Experiment E7 — the edge occlusion rule (paper §II-D, Definition 3).
//!
//! Claim reproduced: τ controls the occlusion margin `δ(u,v) − 3τ`. τ = 0 is
//! the MRNG rule; growing τ weakens occlusion, keeping more edges (denser
//! graph) and buying recall/robustness at higher per-hop cost. Series: edge
//! count, average degree, distance computations and recall@10 vs τ.

use chatgraph_ann::dataset::{clustered, queries, ClusterParams};
use chatgraph_ann::{recall_at_k, AnnIndex, FlatIndex, Metric, SearchStats, TauMg, TauMgParams};
use chatgraph_bench::{print_table, quick_mode};

fn main() {
    let quick = quick_mode();
    let n = if quick { 4000 } else { 16000 };
    let n_queries = if quick { 32 } else { 100 };
    let params = ClusterParams { n, dim: 32, clusters: 40, noise: 0.06 };
    let data = clustered(&params, 13);
    let qs = queries(&params, n_queries, 13);
    let flat = FlatIndex::build(data.clone(), Metric::L2);
    let k = 10;

    let taus: &[f32] = &[0.0, 0.005, 0.01, 0.02, 0.05, 0.1];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &tau in taus {
        let index = TauMg::build(data.clone(), TauMgParams { tau, ..TauMgParams::default() });
        let mut dc = 0usize;
        let mut recall = 0.0;
        for q in &qs {
            let truth = flat.search(q, k, &mut SearchStats::default());
            let mut stats = SearchStats::default();
            let res = index.search(q, k, &mut stats);
            dc += stats.distance_computations;
            recall += recall_at_k(&truth, &res, k);
        }
        rows.push(vec![
            format!("{tau}"),
            index.edge_count().to_string(),
            format!("{:.2}", index.avg_degree()),
            format!("{:.1}", dc as f64 / qs.len() as f64),
            format!("{:.3}", recall / qs.len() as f64),
        ]);
    }
    print_table(
        &format!("E7: τ sweep on n={n} (τ=0 is the MRNG occlusion rule)"),
        &["tau", "edges", "avg degree", "dist comps", "recall@10"],
        &rows,
    );
    println!(
        "\nShape check: small τ > 0 keeps more edges than MRNG (τ=0) and\n\
         reaches equal recall with fewer distance computations — the paper's\n\
         win. Past the sweet spot (3τ approaching the data's neighbour\n\
         distances) occlusion stops firing inside the degree cap, the graph\n\
         loses long-range diversity edges, and recall collapses."
    );
}
