//! Experiments E1–E4 — the four demonstration scenarios (paper Figs. 4–7).
//!
//! Bootstraps one ChatGraph session and replays each scenario end-to-end,
//! printing the dialog transcripts the paper's figures show.

use chatgraph_core::scenarios::{cleaning, comparison, monitoring, understanding};
use chatgraph_core::{ChatGraphConfig, ChatSession};
use chatgraph_graph::generators::{
    corrupt_kg, knowledge_graph, molecule, molecule_database, social_network, KgParams,
    MoleculeParams, SocialParams,
};

fn main() {
    println!("Bootstrapping ChatGraph (registry, retriever, finetuned model)...");
    let (mut session, report) = match ChatSession::bootstrap(ChatGraphConfig::default(), 384) {
        Ok(built) => built,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    println!(
        "Finetuned on {} next-token examples; final train accuracy {:.3}\n",
        report.examples, report.train.final_accuracy
    );

    // E1 / Fig. 4 — understanding, on both graph families.
    let social = social_network(&SocialParams::default(), 21);
    println!("{}", understanding::run(&mut session, social).render());
    let mol = molecule(&MoleculeParams::default(), 21);
    println!("{}", understanding::run(&mut session, mol).render());

    // E2 / Fig. 5 — comparison against a molecule database.
    let db = molecule_database(30, &MoleculeParams::default(), 123);
    let query = db[5].clone();
    println!("{}", comparison::run(&mut session, query, 30, 123).render());

    // E3 / Fig. 6 — cleaning a corrupted knowledge graph.
    let mut kg = knowledge_graph(&KgParams::default(), 31);
    let truth = corrupt_kg(&mut kg, 0.08, 0.05, 31);
    let (out, stats) = cleaning::run(&mut session, kg, &truth);
    println!("{}", out.render());
    println!(
        "cleaning ground truth: {} wrong + {} missing injected; residual after \
         cleaning: {} wrong, {} missing ({} confirmations)\n",
        stats.injected_wrong,
        stats.removed_facts,
        stats.residual_wrong,
        stats.residual_missing,
        stats.confirmations
    );

    // E4 / Fig. 7 — chain monitoring with a user edit.
    let social2 = social_network(&SocialParams::default(), 41);
    let (out, events) = monitoring::run(&mut session, social2);
    println!("{}", out.render());
    println!("monitor events captured: {}", events.len());
}
