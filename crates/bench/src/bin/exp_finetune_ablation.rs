//! Experiment E8 — API chain-oriented finetuning ablation (paper §II-C).
//!
//! Claims reproduced:
//! * the node matching-based loss (Definition 1) beats a structure-blind
//!   token-overlap score, because equivalent chains are order-sensitive at
//!   execution time;
//! * search-based prediction over the equivalent ground truths beats plain
//!   teacher forcing on the first truth;
//! * rollout count `r` trades compute for target quality.
//!
//! Rows: held-out exact-match and mean matching loss per method and per `r`.

use chatgraph_apis::registry;
use chatgraph_bench::{print_table, quick_mode};
use chatgraph_core::{
    evaluate, finetune, generate_corpus, ApiRetriever, ChatGraphConfig, CorpusParams,
    FinetuneMethod, GraphAwareLm,
};

fn main() {
    let quick = quick_mode();
    let (train_n, test_n) = if quick { (96, 32) } else { (192, 64) };
    let reg = registry::standard();
    let base_config = ChatGraphConfig::default();
    let retriever = ApiRetriever::build(&reg, &base_config.retrieval);
    let corpus = generate_corpus(
        &CorpusParams { size: train_n + test_n, small_graphs: true },
        29,
    );
    let (train_set, test_set) = corpus.split_at(train_n);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let run = |rows: &mut Vec<Vec<String>>, label: &str, method: FinetuneMethod, rollouts: usize| {
        let mut config = base_config.clone();
        config.finetune.rollouts = rollouts;
        let mut lm = GraphAwareLm::new(&reg, &config);
        let report = finetune(&mut lm, &reg, &retriever, train_set, method, &config);
        let eval = evaluate(&lm, &reg, &retriever, test_set, &config);
        rows.push(vec![
            label.to_owned(),
            rollouts.to_string(),
            format!("{:.3}", report.train.final_accuracy),
            format!("{:.3}", eval.exact_match),
            format!("{:.3}", eval.avg_loss),
        ]);
    };

    // Untrained baseline.
    {
        let lm = GraphAwareLm::new(&reg, &base_config);
        let eval = evaluate(&lm, &reg, &retriever, test_set, &base_config);
        rows.push(vec![
            "untrained".to_owned(),
            "-".to_owned(),
            "-".to_owned(),
            format!("{:.3}", eval.exact_match),
            format!("{:.3}", eval.avg_loss),
        ]);
    }

    run(&mut rows, "teacher forcing (no search)", FinetuneMethod::TeacherForcing, 0);
    run(&mut rows, "token-overlap score (no Def. 1)", FinetuneMethod::TokenOverlap, 2);
    let sweep: &[usize] = if quick { &[0, 2] } else { &[0, 1, 2, 4, 8] };
    for &r in sweep {
        run(&mut rows, "full (matching loss)", FinetuneMethod::Full, r);
    }

    // DESIGN.md §6.4 — multi-level sequentialisation ablation: drop the
    // super-graph token stream from the graph features.
    {
        let mut config = base_config.clone();
        config.cover.multi_level = false;
        let mut lm = GraphAwareLm::new(&reg, &config);
        let report = finetune(&mut lm, &reg, &retriever, train_set, FinetuneMethod::Full, &config);
        let eval = evaluate(&lm, &reg, &retriever, test_set, &config);
        rows.push(vec![
            "full, single-level sequences".to_owned(),
            config.finetune.rollouts.to_string(),
            format!("{:.3}", report.train.final_accuracy),
            format!("{:.3}", eval.exact_match),
            format!("{:.3}", eval.avg_loss),
        ]);
    }

    // DESIGN.md §6.5 — candidate-set ablation: decode over the full API
    // vocabulary instead of retrieval + graph-type candidates.
    {
        let config = base_config.clone();
        let mut lm = GraphAwareLm::new(&reg, &config);
        let report = finetune(&mut lm, &reg, &retriever, train_set, FinetuneMethod::Full, &config);
        let eval = chatgraph_core::finetune::evaluate_opts(
            &lm,
            &reg,
            &retriever,
            test_set,
            &config,
            chatgraph_core::finetune::EvalOptions { full_vocabulary: true },
        );
        rows.push(vec![
            "full, decode over whole vocabulary".to_owned(),
            config.finetune.rollouts.to_string(),
            format!("{:.3}", report.train.final_accuracy),
            format!("{:.3}", eval.exact_match),
            format!("{:.3}", eval.avg_loss),
        ]);
    }

    print_table(
        "E8: finetuning ablation — held-out chain accuracy",
        &["method", "r", "train acc", "exact match", "avg matching loss"],
        &rows,
    );
    println!(
        "\nShape check: full ≥ token-overlap and ≥ teacher forcing on exact\n\
         match; avg matching loss orders the same way, and the untrained\n\
         baseline is far below all finetuned variants."
    );
}
