//! # chatgraph-ann
//!
//! Approximate nearest-neighbour search substrate for ChatGraph's API
//! retrieval module (paper §II-D).
//!
//! The paper adopts **τ-MG** (the authors' prior work \[18\]) as the
//! state-of-the-art proximity-graph index, defined by its *edge occlusion
//! rule* (Definition 3): given nodes `u`, `u'`, `v`, if edge `(u, u')` exists
//! and `u' ∈ ball(u, δ(u,v)) ∩ ball(v, δ(u,v) − 3τ)`, then edge `(u, v)` is
//! occluded. Setting `τ = 0` recovers the MRNG/NSG occlusion rule, which this
//! crate exposes as the MRNG baseline; a simplified HNSW and a brute-force
//! flat index complete the baseline set used in experiments E6/E7.
//!
//! * [`dataset`] — seeded clustered-Gaussian vector workloads.
//! * [`flat`] — exact linear-scan index (ground truth + baseline).
//! * [`taumg`] — the τ-monotonic graph with greedy/beam routing.
//! * [`hnsw`] — hierarchical navigable small-world baseline.
//! * [`eval`] — recall@k and distance-computation accounting.

pub mod dataset;
pub mod eval;
pub mod flat;
pub mod hnsw;
pub mod routing;
pub mod taumg;

pub use chatgraph_embed::{Metric, Vector};
pub use eval::{recall_at_k, SearchStats};
pub use flat::FlatIndex;
pub use hnsw::{Hnsw, HnswParams};
pub use taumg::{TauMg, TauMgParams};

/// A nearest-neighbour index over an owned set of vectors.
///
/// `search` returns up to `k` `(index, distance)` pairs ordered by increasing
/// distance and records work done in `stats`.
pub trait AnnIndex {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Searches for the `k` nearest neighbours of `query`.
    fn search(&self, query: &Vector, k: usize, stats: &mut SearchStats) -> Vec<(usize, f32)>;
}
