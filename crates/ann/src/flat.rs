//! Exact linear-scan index.
//!
//! Serves two roles: the ground-truth oracle for recall evaluation, and the
//! "no index" baseline whose cost grows linearly in `n` (the contrast to
//! τ-MG's sub-linear routing in experiment E6).

use crate::eval::SearchStats;
use crate::AnnIndex;
use chatgraph_embed::{Metric, Vector};

/// Brute-force nearest-neighbour index.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: Vec<Vector>,
    metric: Metric,
}

impl FlatIndex {
    /// Builds (stores) the index.
    pub fn build(data: Vec<Vector>, metric: Metric) -> Self {
        FlatIndex { data, metric }
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Access to the underlying vectors.
    pub fn vectors(&self) -> &[Vector] {
        &self.data
    }
}

impl AnnIndex for FlatIndex {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn search(&self, query: &Vector, k: usize, stats: &mut SearchStats) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> = self
            .data
            .iter()
            .enumerate()
            .map(|(i, v)| {
                stats.distance_computations += 1;
                (i, v.distance(query, self.metric))
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> FlatIndex {
        FlatIndex::build(
            vec![
                Vector(vec![0.0, 0.0]),
                Vector(vec![1.0, 0.0]),
                Vector(vec![0.0, 2.0]),
                Vector(vec![3.0, 3.0]),
            ],
            Metric::L2,
        )
    }

    #[test]
    fn finds_exact_neighbours_in_order() {
        let idx = index();
        let mut stats = SearchStats::default();
        let res = idx.search(&Vector(vec![0.1, 0.0]), 2, &mut stats);
        assert_eq!(res[0].0, 0);
        assert_eq!(res[1].0, 1);
        assert_eq!(stats.distance_computations, 4);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let idx = index();
        let mut stats = SearchStats::default();
        let res = idx.search(&Vector(vec![0.0, 0.0]), 10, &mut stats);
        assert_eq!(res.len(), 4);
    }

    #[test]
    fn empty_index() {
        let idx = FlatIndex::build(Vec::new(), Metric::L2);
        assert!(idx.is_empty());
        let mut stats = SearchStats::default();
        assert!(idx.search(&Vector(vec![1.0]), 3, &mut stats).is_empty());
    }

    #[test]
    fn cosine_metric_respected() {
        let idx = FlatIndex::build(
            vec![Vector(vec![1.0, 0.0]), Vector(vec![10.0, 10.0])],
            Metric::Cosine,
        );
        let mut stats = SearchStats::default();
        let res = idx.search(&Vector(vec![2.0, 2.0]), 1, &mut stats);
        // Cosine ignores magnitude: the diagonal vector wins.
        assert_eq!(res[0].0, 1);
    }
}
