//! Simplified HNSW baseline (hierarchical navigable small world).
//!
//! The comparison proximity graph for experiments E6/E7. Levels are sampled
//! geometrically; upper layers route greedily, layer 0 runs the shared beam
//! search. Neighbour selection keeps the `M` closest candidates (the original
//! HNSW "simple" heuristic), contrasting with τ-MG's occlusion rule.

use crate::eval::SearchStats;
use crate::routing::beam_search;
use crate::AnnIndex;
use chatgraph_embed::{Metric, Vector};
use chatgraph_support::rng::{RngExt, SeedableRng};
use chatgraph_support::rng::ChaCha12Rng;

/// Build/search parameters for [`Hnsw`].
#[derive(Debug, Clone, PartialEq)]
pub struct HnswParams {
    /// Max neighbours per node per layer (layer 0 allows `2M`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width at query time.
    pub ef_search: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Level-sampling seed.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 64,
            ef_search: 32,
            metric: Metric::L2,
            seed: 0xcafe,
        }
    }
}

/// HNSW's diversity heuristic: scan candidates by increasing distance and
/// keep one only if it is closer to the base point than to every neighbour
/// kept so far. Preserves edges in distinct directions, which keeps separated
/// clusters mutually reachable.
fn heuristic_select(
    data: &[Vector],
    metric: Metric,
    cands: &[(usize, f32)],
    cap: usize,
) -> Vec<usize> {
    let mut kept: Vec<(usize, f32)> = Vec::with_capacity(cap);
    for &(c, dc) in cands {
        if kept.len() >= cap {
            break;
        }
        let dominated = kept
            .iter()
            .any(|&(r, _)| data[r].distance(&data[c], metric) < dc);
        if !dominated {
            kept.push((c, dc));
        }
    }
    // Back-fill with skipped candidates if the heuristic was too aggressive.
    if kept.len() < cap {
        for &(c, dc) in cands {
            if kept.len() >= cap {
                break;
            }
            if !kept.iter().any(|&(r, _)| r == c) {
                kept.push((c, dc));
            }
        }
    }
    kept.into_iter().map(|(c, _)| c).collect()
}

/// The HNSW index.
#[derive(Debug, Clone)]
pub struct Hnsw {
    data: Vec<Vector>,
    /// `layers[l][v]` = adjacency of node v at level l (empty if v absent).
    layers: Vec<Vec<Vec<u32>>>,
    /// Highest level per node.
    node_level: Vec<usize>,
    entry: usize,
    params: HnswParams,
}

impl Hnsw {
    /// Builds an HNSW over `data`.
    pub fn build(data: Vec<Vector>, params: HnswParams) -> Self {
        assert!(params.m >= 2, "m must be at least 2");
        let n = data.len();
        let mut rng = ChaCha12Rng::seed_from_u64(params.seed);
        let ml = 1.0 / (params.m as f64).ln();
        let node_level: Vec<usize> = (0..n)
            .map(|_| {
                let u: f64 = rng.random::<f64>().max(1e-12);
                (-u.ln() * ml).floor() as usize
            })
            .collect();
        let max_level = node_level.iter().copied().max().unwrap_or(0);
        let mut index = Hnsw {
            data,
            layers: vec![vec![Vec::new(); n]; max_level + 1],
            node_level,
            entry: 0,
            params,
        };
        if n == 0 {
            return index;
        }
        let mut entry = 0usize;
        let mut entry_level = index.node_level[0];
        let mut scratch = SearchStats::default();
        for i in 1..n {
            let level = index.node_level[i];
            // Phase 1: greedy descent through layers above `level`.
            let mut ep = entry;
            let mut l = entry_level;
            while l > level {
                let res = beam_search(
                    &index.data,
                    |u| index.layers[l][u].iter(),
                    &[ep],
                    &index.data[i],
                    1,
                    index.params.metric,
                    &mut scratch,
                );
                ep = res[0].0;
                l -= 1;
            }
            // Phase 2: insert at each layer from min(level, entry_level) to 0.
            for l in (0..=level.min(entry_level)).rev() {
                let cands = beam_search(
                    &index.data,
                    |u| index.layers[l][u].iter(),
                    &[ep],
                    &index.data[i],
                    index.params.ef_construction,
                    index.params.metric,
                    &mut scratch,
                );
                ep = cands.first().map(|c| c.0).unwrap_or(ep);
                let cap = if l == 0 { 2 * index.params.m } else { index.params.m };
                let filtered: Vec<(usize, f32)> =
                    cands.iter().copied().filter(|&(c, _)| c != i).collect();
                let selected = heuristic_select(
                    &index.data,
                    index.params.metric,
                    &filtered,
                    index.params.m,
                );
                for &j in &selected {
                    index.layers[l][i].push(j as u32);
                    index.layers[l][j].push(i as u32);
                    if index.layers[l][j].len() > cap {
                        index.shrink(l, j, cap);
                    }
                }
            }
            if level > entry_level {
                entry = i;
                entry_level = level;
            }
        }
        index.entry = entry;
        index
    }

    /// Prunes node `j`'s layer-`l` list back to `cap` diverse neighbours.
    fn shrink(&mut self, l: usize, j: usize, cap: usize) {
        let mut scored: Vec<(usize, f32)> = self.layers[l][j]
            .iter()
            .map(|&w| {
                (
                    w as usize,
                    self.data[j].distance(&self.data[w as usize], self.params.metric),
                )
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let kept = heuristic_select(&self.data, self.params.metric, &scored, cap);
        self.layers[l][j] = kept.into_iter().map(|w| w as u32).collect();
    }

    /// Total directed edge count at layer 0.
    pub fn edge_count(&self) -> usize {
        self.layers
            .first()
            .map(|l0| l0.iter().map(|a| a.len()).sum())
            .unwrap_or(0)
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The parameters used at build time.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Search with an explicit layer-0 beam width.
    pub fn search_with_ef(
        &self,
        query: &Vector,
        k: usize,
        ef: usize,
        stats: &mut SearchStats,
    ) -> Vec<(usize, f32)> {
        if self.data.is_empty() {
            return Vec::new();
        }
        let mut ep = self.entry;
        for l in (1..self.layers.len()).rev() {
            let res = beam_search(
                &self.data,
                |u| self.layers[l][u].iter(),
                &[ep],
                query,
                1,
                self.params.metric,
                stats,
            );
            ep = res[0].0;
        }
        let mut res = beam_search(
            &self.data,
            |u| self.layers[0][u].iter(),
            &[ep],
            query,
            ef.max(k),
            self.params.metric,
            stats,
        );
        res.truncate(k);
        res
    }
}

impl AnnIndex for Hnsw {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn search(&self, query: &Vector, k: usize, stats: &mut SearchStats) -> Vec<(usize, f32)> {
        self.search_with_ef(query, k, self.params.ef_search, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{clustered, queries, ClusterParams};
    use crate::eval::recall_at_k;
    use crate::flat::FlatIndex;

    #[test]
    fn empty_and_singleton() {
        let idx = Hnsw::build(Vec::new(), HnswParams::default());
        let mut stats = SearchStats::default();
        assert!(idx.search(&Vector(vec![0.0]), 1, &mut stats).is_empty());
        let idx = Hnsw::build(vec![Vector(vec![1.0])], HnswParams::default());
        assert_eq!(idx.search(&Vector(vec![1.0]), 1, &mut stats), vec![(0, 0.0)]);
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let p = ClusterParams { n: 2000, dim: 16, clusters: 20, noise: 0.05 };
        let data = clustered(&p, 5);
        let flat = FlatIndex::build(data.clone(), Metric::L2);
        let idx = Hnsw::build(data, HnswParams::default());
        let qs = queries(&p, 50, 5);
        let mut total = 0.0;
        for q in &qs {
            let mut s = SearchStats::default();
            let truth = flat.search(q, 10, &mut SearchStats::default());
            let approx = idx.search(q, 10, &mut s);
            total += recall_at_k(&truth, &approx, 10);
        }
        let recall = total / 50.0;
        assert!(recall > 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn multiple_layers_emerge_on_larger_sets() {
        let p = ClusterParams { n: 3000, dim: 8, clusters: 10, noise: 0.1 };
        let idx = Hnsw::build(clustered(&p, 1), HnswParams::default());
        assert!(idx.num_layers() >= 2, "{} layers", idx.num_layers());
    }

    #[test]
    fn sub_linear_distance_computations() {
        let p = ClusterParams { n: 4000, dim: 16, clusters: 30, noise: 0.05 };
        let data = clustered(&p, 8);
        let idx = Hnsw::build(data, HnswParams::default());
        let q = &queries(&p, 1, 8)[0];
        let mut s = SearchStats::default();
        idx.search(q, 10, &mut s);
        assert!(
            s.distance_computations < 1500,
            "{} computations on 4000 points",
            s.distance_computations
        );
    }

    #[test]
    #[should_panic(expected = "m must be at least 2")]
    fn tiny_m_rejected() {
        Hnsw::build(Vec::new(), HnswParams { m: 1, ..Default::default() });
    }
}
