//! Seeded synthetic vector workloads.
//!
//! The ANN experiments need datasets whose size can sweep from 1k to 64k
//! vectors. Clustered Gaussians mimic the embedding clouds real sentence
//! embedders produce (queries land near clusters, not uniformly at random).

use chatgraph_embed::Vector;
use chatgraph_support::rng::{RngExt, SeedableRng};
use chatgraph_support::rng::ChaCha12Rng;

/// Parameters for [`clustered`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterParams {
    /// Number of vectors.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of Gaussian clusters.
    pub clusters: usize,
    /// Per-coordinate noise standard deviation around each centre.
    pub noise: f32,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            n: 1000,
            dim: 32,
            clusters: 16,
            noise: 0.08,
        }
    }
}

fn gaussian(rng: &mut ChaCha12Rng) -> f32 {
    // Box–Muller; avoids pulling in rand_distr.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

fn centres(params: &ClusterParams, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    (0..params.clusters.max(1))
        .map(|_| (0..params.dim).map(|_| rng.random_range(-1.0..1.0)).collect())
        .collect()
}

fn sample(params: &ClusterParams, n: usize, seed: u64, stream: u64) -> Vec<Vector> {
    let centres = centres(params, seed);
    // Points come from a salted stream so queries share the dataset's cluster
    // centres without duplicating its points.
    let mut rng = ChaCha12Rng::seed_from_u64(seed ^ stream);
    (0..n)
        .map(|_| {
            let c = &centres[rng.random_range(0..centres.len())];
            Vector(
                c.iter()
                    .map(|&x| x + params.noise * gaussian(&mut rng))
                    .collect(),
            )
        })
        .collect()
}

/// Samples `params.n` vectors from a mixture of axis-aligned Gaussians with
/// uniformly random centres in `[-1, 1]^dim`.
pub fn clustered(params: &ClusterParams, seed: u64) -> Vec<Vector> {
    sample(params, params.n, seed, 0)
}

/// Samples `count` query vectors from the *same* mixture (same centres,
/// disjoint sample stream), mimicking held-out queries of a real workload.
pub fn queries(params: &ClusterParams, count: usize, seed: u64) -> Vec<Vector> {
    sample(params, count, seed, 0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_determinism() {
        let p = ClusterParams::default();
        let a = clustered(&p, 7);
        let b = clustered(&p, 7);
        assert_eq!(a.len(), 1000);
        assert_eq!(a[0].dim(), 32);
        assert_eq!(a, b);
        assert_ne!(a, clustered(&p, 8));
    }

    #[test]
    fn queries_differ_from_dataset() {
        let p = ClusterParams::default();
        let data = clustered(&p, 7);
        let qs = queries(&p, 10, 7);
        assert_eq!(qs.len(), 10);
        assert!(!data.contains(&qs[0]));
    }

    #[test]
    fn clusters_are_tight_relative_to_spread() {
        let p = ClusterParams {
            n: 400,
            dim: 16,
            clusters: 4,
            noise: 0.02,
        };
        let data = clustered(&p, 3);
        // Nearest-neighbour distance within a tight mixture is far below the
        // typical inter-cluster distance.
        let d01 = data[0].l2(&data[1]);
        let mut min_d = f32::MAX;
        for v in &data[1..100] {
            min_d = min_d.min(data[0].l2(v));
        }
        assert!(min_d < d01.max(0.5));
        assert!(min_d < 0.5, "nearest point should share a cluster: {min_d}");
    }

    #[test]
    fn gaussian_has_roughly_zero_mean() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f32 = (0..n).map(|_| gaussian(&mut rng)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
