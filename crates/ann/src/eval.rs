//! Search accounting and quality metrics.

/// Work counters filled in by every index during a search.
///
/// Distance computations are the machine-independent cost metric the ANN
/// literature (and experiment E6) compares on; hops count greedy routing
/// steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of vector-distance evaluations.
    pub distance_computations: usize,
    /// Number of routing steps (nodes whose adjacency list was expanded).
    pub hops: usize,
}

impl SearchStats {
    /// Resets both counters.
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }
}

/// Recall@k: fraction of the true `k` nearest neighbours that appear in the
/// approximate result. Both lists are `(index, distance)` pairs.
pub fn recall_at_k(truth: &[(usize, f32)], result: &[(usize, f32)], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let truth_ids: std::collections::HashSet<usize> =
        truth.iter().take(k).map(|&(i, _)| i).collect();
    if truth_ids.is_empty() {
        return 1.0;
    }
    let hit = result
        .iter()
        .take(k)
        .filter(|(i, _)| truth_ids.contains(i))
        .count();
    hit as f64 / truth_ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_recall() {
        let truth = vec![(1, 0.1), (2, 0.2), (3, 0.3)];
        assert_eq!(recall_at_k(&truth, &truth, 3), 1.0);
    }

    #[test]
    fn partial_recall() {
        let truth = vec![(1, 0.1), (2, 0.2)];
        let result = vec![(1, 0.1), (9, 0.15)];
        assert_eq!(recall_at_k(&truth, &result, 2), 0.5);
    }

    #[test]
    fn k_zero_and_empty_truth_are_full_recall() {
        assert_eq!(recall_at_k(&[], &[], 5), 1.0);
        assert_eq!(recall_at_k(&[(1, 0.0)], &[], 0), 1.0);
    }

    #[test]
    fn order_within_top_k_does_not_matter() {
        let truth = vec![(1, 0.1), (2, 0.2)];
        let result = vec![(2, 0.2), (1, 0.1)];
        assert_eq!(recall_at_k(&truth, &result, 2), 1.0);
    }

    #[test]
    fn stats_reset() {
        let mut s = SearchStats {
            distance_computations: 5,
            hops: 2,
        };
        s.reset();
        assert_eq!(s, SearchStats::default());
    }
}
