//! Greedy/beam routing shared by the proximity-graph indexes.
//!
//! The router keeps a frontier of the `ef` closest nodes seen so far and
//! repeatedly expands the closest unexpanded one — the "greedy routing
//! process" of paper §II-D. `ef = 1` degenerates to pure greedy descent;
//! larger `ef` trades distance computations for recall.

use crate::eval::SearchStats;
use chatgraph_embed::{Metric, Vector};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

#[derive(PartialEq)]
struct HeapItem {
    dist: f32,
    id: usize,
}

impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist.total_cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

/// Best-first beam search over a node-adjacency function.
///
/// Returns the `ef` closest visited nodes as `(id, distance)` sorted by
/// increasing distance. `adj` yields the neighbour ids of a node.
pub fn beam_search<'a, F, I>(
    data: &[Vector],
    adj: F,
    entries: &[usize],
    query: &Vector,
    ef: usize,
    metric: Metric,
    stats: &mut SearchStats,
) -> Vec<(usize, f32)>
where
    F: Fn(usize) -> I,
    I: IntoIterator<Item = &'a u32>,
{
    let ef = ef.max(1);
    let mut visited: HashSet<usize> = HashSet::new();
    // Min-heap of candidates to expand (closest first): store negated via Reverse.
    let mut candidates: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::new();
    // Max-heap of current best results (farthest on top for easy eviction).
    let mut best: BinaryHeap<HeapItem> = BinaryHeap::new();

    for &e in entries {
        if e >= data.len() || !visited.insert(e) {
            continue;
        }
        stats.distance_computations += 1;
        let d = data[e].distance(query, metric);
        candidates.push(std::cmp::Reverse(HeapItem { dist: d, id: e }));
        best.push(HeapItem { dist: d, id: e });
    }
    while best.len() > ef {
        best.pop();
    }

    while let Some(std::cmp::Reverse(cur)) = candidates.pop() {
        let worst = best.peek().map(|h| h.dist).unwrap_or(f32::INFINITY);
        if best.len() >= ef && cur.dist > worst {
            break; // the closest open candidate cannot improve the result set
        }
        stats.hops += 1;
        for &nb in adj(cur.id) {
            let nb = nb as usize;
            if !visited.insert(nb) {
                continue;
            }
            stats.distance_computations += 1;
            let d = data[nb].distance(query, metric);
            let worst = best.peek().map(|h| h.dist).unwrap_or(f32::INFINITY);
            if best.len() < ef || d < worst {
                candidates.push(std::cmp::Reverse(HeapItem { dist: d, id: nb }));
                best.push(HeapItem { dist: d, id: nb });
                if best.len() > ef {
                    best.pop();
                }
            }
        }
    }

    let mut out: Vec<(usize, f32)> = best.into_iter().map(|h| (h.id, h.dist)).collect();
    out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D line graph over points 0..10 at coordinates x = id.
    fn line_world() -> (Vec<Vector>, Vec<Vec<u32>>) {
        let data: Vec<Vector> = (0..10).map(|i| Vector(vec![i as f32])).collect();
        let adj: Vec<Vec<u32>> = (0..10u32)
            .map(|i| {
                let mut v = Vec::new();
                if i > 0 {
                    v.push(i - 1);
                }
                if i < 9 {
                    v.push(i + 1);
                }
                v
            })
            .collect();
        (data, adj)
    }

    #[test]
    fn greedy_descent_reaches_nearest() {
        let (data, adj) = line_world();
        let mut stats = SearchStats::default();
        let res = beam_search(
            &data,
            |i| adj[i].iter(),
            &[0],
            &Vector(vec![7.2]),
            1,
            Metric::L2,
            &mut stats,
        );
        assert_eq!(res[0].0, 7);
        assert!(stats.hops >= 7, "must walk the line: {stats:?}");
    }

    #[test]
    fn wider_beam_returns_ef_results() {
        let (data, adj) = line_world();
        let mut stats = SearchStats::default();
        let res = beam_search(
            &data,
            |i| adj[i].iter(),
            &[0],
            &Vector(vec![5.0]),
            3,
            Metric::L2,
            &mut stats,
        );
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].0, 5);
        let ids: Vec<usize> = res.iter().map(|r| r.0).collect();
        assert!(ids.contains(&4) && ids.contains(&6));
    }

    #[test]
    fn empty_entries_yield_empty_result() {
        let (data, adj) = line_world();
        let mut stats = SearchStats::default();
        let res = beam_search(
            &data,
            |i| adj[i].iter(),
            &[],
            &Vector(vec![5.0]),
            3,
            Metric::L2,
            &mut stats,
        );
        assert!(res.is_empty());
        assert_eq!(stats.distance_computations, 0);
    }

    #[test]
    fn results_sorted_by_distance() {
        let (data, adj) = line_world();
        let mut stats = SearchStats::default();
        let res = beam_search(
            &data,
            |i| adj[i].iter(),
            &[9],
            &Vector(vec![0.0]),
            5,
            Metric::L2,
            &mut stats,
        );
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(res[0].0, 0);
    }
}
