//! The τ-monotonic graph (τ-MG) proximity index.
//!
//! Paper §II-D, Definition 3 (edge occlusion rule): for nodes `u`, `u'`, `v`,
//! if edge `(u, u')` is in the graph and
//! `u' ∈ ball(u, δ(u,v)) ∩ ball(v, δ(u,v) − 3τ)`, then edge `(u, v)` is *not*
//! in the graph. Intuitively `u'` is both closer to `u` than `v` is, and close
//! enough to `v` (by a 3τ margin) that routing through `u'` makes monotonic
//! progress; the long edge `(u, v)` is therefore redundant. τ = 0 recovers
//! the MRNG occlusion rule, exposed here as [`TauMg::build_mrng`].
//!
//! Construction is incremental (NSG/HNSW-style): each point is inserted by
//! routing through the partial graph to collect candidate neighbours, then
//! applying the occlusion rule, then back-linking with degree-capped
//! re-pruning. The original paper builds from an exact MRNG; the incremental
//! build trades a small amount of graph quality for `O(n log n)`-ish build
//! time, which the recall experiments (E6) show is still ≥ the HNSW baseline.

use crate::eval::SearchStats;
use crate::routing::beam_search;
use crate::AnnIndex;
use chatgraph_embed::{Metric, Vector};

/// Build/search parameters for [`TauMg`] (paper Fig. 3 exposes these knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct TauMgParams {
    /// The τ of the occlusion rule. Must be ≥ 0. Larger τ occludes fewer
    /// edges (the `δ(u,v) − 3τ` ball shrinks), giving denser graphs.
    pub tau: f32,
    /// Maximum out-degree per node (the `m` in the routing-complexity bound
    /// `O(n^(1/m) (ln n)²)`).
    pub max_degree: usize,
    /// Beam width while collecting insertion candidates.
    pub ef_construction: usize,
    /// Default beam width at query time.
    pub ef_search: usize,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for TauMgParams {
    fn default() -> Self {
        TauMgParams {
            tau: 0.01,
            max_degree: 16,
            ef_construction: 64,
            ef_search: 32,
            metric: Metric::L2,
        }
    }
}

/// The τ-MG index.
///
/// After construction the adjacency is flattened into a CSR layout
/// (`csr_offsets`/`csr_targets`): query-time routing reads contiguous
/// neighbour slices instead of chasing one heap allocation per node, which
/// is the hot loop of [`beam_search`].
#[derive(Debug, Clone)]
pub struct TauMg {
    data: Vec<Vector>,
    /// CSR row offsets: neighbours of `u` live at
    /// `csr_targets[csr_offsets[u] as usize..csr_offsets[u + 1] as usize]`.
    csr_offsets: Vec<u32>,
    csr_targets: Vec<u32>,
    entry: Vec<usize>,
    params: TauMgParams,
}

impl TauMg {
    /// Builds a τ-MG over `data`.
    pub fn build(data: Vec<Vector>, params: TauMgParams) -> Self {
        assert!(params.tau >= 0.0, "tau must be non-negative");
        assert!(params.max_degree >= 1, "max_degree must be at least 1");
        let n = data.len();
        let mut index = TauMg {
            data,
            csr_offsets: vec![0],
            csr_targets: Vec::new(),
            entry: Vec::new(),
            params,
        };
        if n == 0 {
            return index;
        }
        // Incremental construction mutates per-node neighbour lists; the
        // ragged form only lives for the duration of the build.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        index.entry = vec![0];
        let mut scratch = SearchStats::default();
        for i in 1..n {
            let ef = index.params.ef_construction.max(index.params.max_degree + 1);
            let mut cands = beam_search(
                &index.data,
                |u| adj[u].iter(),
                &index.entry,
                &index.data[i],
                ef,
                index.params.metric,
                &mut scratch,
            );
            // Vamana-style candidate augmentation: a few pseudo-random
            // existing points join the beam results. The beam only surfaces
            // the local neighbourhood, so without these the occlusion rule
            // never even sees far-away points and the graph grows no
            // long-range edges — routing across well-separated clusters then
            // fails. The occlusion rule keeps a random far candidate exactly
            // when no kept neighbour is already closer to it, i.e. when it
            // opens a new direction.
            let mut h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..8 {
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                let j = (h % i as u64) as usize;
                if !cands.iter().any(|&(c, _)| c == j) {
                    let d = index.data[j].distance(&index.data[i], index.params.metric);
                    cands.push((j, d));
                }
            }
            cands.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let selected = index.select_neighbors(i, &cands);
            for &(j, dij) in &selected {
                adj[i].push(j as u32);
                index.backlink(&mut adj, j, i, dij);
            }
        }
        index.flatten(&adj);
        index.entry = index.entry_points();
        index
    }

    /// Packs the ragged build-time adjacency into the CSR arrays.
    fn flatten(&mut self, adj: &[Vec<u32>]) {
        self.csr_offsets = Vec::with_capacity(adj.len() + 1);
        self.csr_offsets.push(0);
        self.csr_targets = Vec::with_capacity(adj.iter().map(Vec::len).sum());
        for a in adj {
            self.csr_targets.extend_from_slice(a);
            self.csr_offsets.push(self.csr_targets.len() as u32);
        }
    }

    /// Out-neighbours of `u` as a contiguous CSR slice.
    pub fn neighbors(&self, u: usize) -> &[u32] {
        &self.csr_targets[self.csr_offsets[u] as usize..self.csr_offsets[u + 1] as usize]
    }

    /// Routing entry points: the medoid plus a deterministic stratified
    /// sample. Clustered data defeats a single entry point — greedy descent
    /// from the medoid can get trapped in whichever cluster surrounds it —
    /// and multiple scattered entries restore recall at a small, measured
    /// distance-computation cost.
    fn entry_points(&self) -> Vec<usize> {
        let n = self.data.len();
        let mut entries = vec![self.medoid()];
        let extra = 7.min(n.saturating_sub(1));
        if extra > 0 {
            let stride = n / (extra + 1);
            for i in 1..=extra {
                let p = (i * stride).min(n - 1);
                if !entries.contains(&p) {
                    entries.push(p);
                }
            }
        }
        entries
    }

    /// Builds an MRNG-occlusion baseline: τ-MG with τ = 0.
    pub fn build_mrng(data: Vec<Vector>, mut params: TauMgParams) -> Self {
        params.tau = 0.0;
        Self::build(data, params)
    }

    /// Applies Definition 3 to a candidate list (ascending distance from the
    /// new node `u`), returning the kept `(neighbour, distance)` pairs.
    fn select_neighbors(&self, u: usize, cands: &[(usize, f32)]) -> Vec<(usize, f32)> {
        let mut kept: Vec<(usize, f32)> = Vec::with_capacity(self.params.max_degree);
        for &(v, duv) in cands {
            if v == u {
                continue;
            }
            if kept.len() >= self.params.max_degree {
                break;
            }
            // Occlusion: some already-kept u' with δ(u,u') ≤ δ(u,v) (kept
            // list is distance-ascending, so always true) and
            // δ(u',v) < δ(u,v) − 3τ.
            let occluded = kept.iter().any(|&(r, _)| {
                self.data[r].distance(&self.data[v], self.params.metric)
                    < duv - 3.0 * self.params.tau
            });
            if !occluded {
                kept.push((v, duv));
            }
        }
        kept
    }

    /// Adds the reverse edge `j → i`, re-pruning `j`'s list with the
    /// occlusion rule if it overflows the degree cap.
    fn backlink(&self, adj: &mut [Vec<u32>], j: usize, i: usize, dij: f32) {
        if adj[j].contains(&(i as u32)) {
            return;
        }
        adj[j].push(i as u32);
        if adj[j].len() > self.params.max_degree {
            let mut cands: Vec<(usize, f32)> = adj[j]
                .iter()
                .map(|&w| {
                    let w = w as usize;
                    let d = if w == i {
                        dij
                    } else {
                        self.data[j].distance(&self.data[w], self.params.metric)
                    };
                    (w, d)
                })
                .collect();
            cands.sort_by(|a, b| a.1.total_cmp(&b.1));
            let kept = self.select_neighbors(j, &cands);
            adj[j] = kept.iter().map(|&(w, _)| w as u32).collect();
        }
    }

    /// Index of the vector closest to the dataset mean (the routing entry).
    fn medoid(&self) -> usize {
        let dim = self.data[0].dim();
        let mut mean = vec![0.0f32; dim];
        for v in &self.data {
            for (m, x) in mean.iter_mut().zip(v.as_slice()) {
                *m += x;
            }
        }
        let n = self.data.len() as f32;
        for m in &mut mean {
            *m /= n;
        }
        let mean = Vector(mean);
        (0..self.data.len())
            .min_by(|&a, &b| {
                self.data[a]
                    .distance(&mean, self.params.metric)
                    .total_cmp(&self.data[b].distance(&mean, self.params.metric))
            })
            .unwrap_or(0)
    }

    /// Total directed edge count.
    pub fn edge_count(&self) -> usize {
        self.csr_targets.len()
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        let n = self.csr_offsets.len() - 1;
        if n == 0 {
            0.0
        } else {
            self.edge_count() as f64 / n as f64
        }
    }

    /// The parameters used at build time.
    pub fn params(&self) -> &TauMgParams {
        &self.params
    }

    /// Search with an explicit beam width (overriding `ef_search`).
    pub fn search_with_ef(
        &self,
        query: &Vector,
        k: usize,
        ef: usize,
        stats: &mut SearchStats,
    ) -> Vec<(usize, f32)> {
        let mut res = beam_search(
            &self.data,
            |u| self.neighbors(u).iter(),
            &self.entry,
            query,
            ef.max(k),
            self.params.metric,
            stats,
        );
        res.truncate(k);
        res
    }
}

impl AnnIndex for TauMg {
    fn len(&self) -> usize {
        self.data.len()
    }

    fn search(&self, query: &Vector, k: usize, stats: &mut SearchStats) -> Vec<(usize, f32)> {
        self.search_with_ef(query, k, self.params.ef_search, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{clustered, queries, ClusterParams};
    use crate::eval::recall_at_k;
    use crate::flat::FlatIndex;

    fn small_params() -> TauMgParams {
        TauMgParams::default()
    }

    #[test]
    fn empty_and_singleton() {
        let idx = TauMg::build(Vec::new(), small_params());
        assert!(idx.is_empty());
        let mut stats = SearchStats::default();
        assert!(idx.search(&Vector(vec![0.0]), 1, &mut stats).is_empty());

        let idx = TauMg::build(vec![Vector(vec![1.0, 2.0])], small_params());
        let res = idx.search(&Vector(vec![1.0, 2.0]), 1, &mut stats);
        assert_eq!(res, vec![(0, 0.0)]);
    }

    #[test]
    fn degree_cap_respected() {
        let p = ClusterParams { n: 500, dim: 8, clusters: 5, noise: 0.1 };
        let idx = TauMg::build(clustered(&p, 2), small_params());
        for u in 0..idx.len() {
            assert!(idx.neighbors(u).len() <= idx.params.max_degree);
        }
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let p = ClusterParams { n: 2000, dim: 16, clusters: 20, noise: 0.05 };
        let data = clustered(&p, 5);
        let flat = FlatIndex::build(data.clone(), Metric::L2);
        let idx = TauMg::build(data, small_params());
        let qs = queries(&p, 50, 5);
        let mut total = 0.0;
        for q in &qs {
            let mut s1 = SearchStats::default();
            let mut s2 = SearchStats::default();
            let truth = flat.search(q, 10, &mut s1);
            let approx = idx.search(q, 10, &mut s2);
            total += recall_at_k(&truth, &approx, 10);
            assert!(
                s2.distance_computations < s1.distance_computations,
                "graph search must beat linear scan"
            );
        }
        let recall = total / 50.0;
        assert!(recall > 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn tau_zero_is_sparser_or_equal() {
        let p = ClusterParams { n: 800, dim: 8, clusters: 8, noise: 0.1 };
        let data = clustered(&p, 9);
        let taumg = TauMg::build(data.clone(), TauMgParams { tau: 0.05, ..small_params() });
        let mrng = TauMg::build_mrng(data, small_params());
        assert_eq!(mrng.params().tau, 0.0);
        // τ > 0 weakens occlusion ⇒ keeps at least as many edges.
        assert!(
            taumg.edge_count() >= mrng.edge_count(),
            "τ-MG {} vs MRNG {}",
            taumg.edge_count(),
            mrng.edge_count()
        );
    }

    #[test]
    fn exact_match_query_returns_itself() {
        let p = ClusterParams { n: 300, dim: 8, clusters: 4, noise: 0.1 };
        let data = clustered(&p, 4);
        let idx = TauMg::build(data.clone(), small_params());
        let mut stats = SearchStats::default();
        let res = idx.search(&data[42], 1, &mut stats);
        assert_eq!(res[0].0, 42);
        assert_eq!(res[0].1, 0.0);
    }

    #[test]
    fn graph_is_connected_enough_to_route_anywhere() {
        let p = ClusterParams { n: 400, dim: 8, clusters: 10, noise: 0.05 };
        let data = clustered(&p, 6);
        let idx = TauMg::build(data.clone(), small_params());
        let mut misses = 0;
        for (i, v) in data.iter().enumerate() {
            let mut stats = SearchStats::default();
            let res = idx.search_with_ef(v, 1, 64, &mut stats);
            if res[0].0 != i && res[0].1 > 0.0 {
                misses += 1;
            }
        }
        assert!(misses <= 4, "{misses} unreachable self-lookups");
    }

    #[test]
    #[should_panic(expected = "tau must be non-negative")]
    fn negative_tau_rejected() {
        TauMg::build(Vec::new(), TauMgParams { tau: -0.1, ..small_params() });
    }
}
