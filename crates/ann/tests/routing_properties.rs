//! Property-based tests for the ANN indexes.

use chatgraph_ann::dataset::{clustered, ClusterParams};
use chatgraph_ann::{
    recall_at_k, AnnIndex, FlatIndex, Hnsw, HnswParams, Metric, SearchStats, TauMg, TauMgParams,
    Vector,
};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

/// A random coordinate vector with components in `-5.0..5.0`.
fn random_vector(rng: &mut StdRng, dim: usize) -> Vector {
    Vector((0..dim).map(|_| rng.random_range(-5.0f32..5.0)).collect())
}

fn random_vectors(rng: &mut StdRng, n: usize, dim: usize) -> Vec<Vector> {
    (0..n).map(|_| random_vector(rng, dim)).collect()
}

/// Flat search returns results sorted ascending, of the right length,
/// with correct distances.
#[test]
fn flat_search_is_sound() {
    check(
        "flat_search_is_sound",
        Config::default().with_cases(32),
        |rng, _size| (random_vectors(rng, 12, 4), random_vector(rng, 4)),
        |(data, q)| {
            let idx = FlatIndex::build(data.clone(), Metric::L2);
            let mut stats = SearchStats::default();
            let res = idx.search(q, 5, &mut stats);
            prop_assert_eq!(res.len(), 5.min(data.len()));
            prop_assert_eq!(stats.distance_computations, data.len());
            for w in res.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            for (i, d) in &res {
                prop_assert!((data[*i].l2(q) - d).abs() < 1e-4);
            }
            Ok(())
        },
    );
}

/// τ-MG search results are always a subset of the dataset, sorted, and
/// never worse than the flat top-1 by more than the beam would allow on
/// tiny datasets (where the graph is effectively complete).
#[test]
fn taumg_on_tiny_data_is_exact() {
    check(
        "taumg_on_tiny_data_is_exact",
        Config::default().with_cases(32),
        |rng, _size| (random_vectors(rng, 10, 4), random_vector(rng, 4)),
        |(data, q)| {
            let flat = FlatIndex::build(data.clone(), Metric::L2);
            let idx = TauMg::build(data.clone(), TauMgParams::default());
            let truth = flat.search(q, 3, &mut SearchStats::default());
            let res = idx.search_with_ef(q, 3, 16, &mut SearchStats::default());
            prop_assert_eq!(
                recall_at_k(&truth, &res, 3),
                1.0,
                "tiny graphs are fully connected"
            );
            Ok(())
        },
    );
}

/// HNSW returns sorted results of the requested size on small data.
#[test]
fn hnsw_result_shape() {
    check(
        "hnsw_result_shape",
        Config::default().with_cases(32),
        |rng, _size| (random_vectors(rng, 15, 3), random_vector(rng, 3)),
        |(data, q)| {
            let idx = Hnsw::build(data.clone(), HnswParams::default());
            let res = idx.search(q, 4, &mut SearchStats::default());
            prop_assert_eq!(res.len(), 4);
            for w in res.windows(2) {
                prop_assert!(w[0].1 <= w[1].1);
            }
            Ok(())
        },
    );
}

/// Determinism across rebuilds: same data, same parameters → identical
/// search results.
#[test]
fn builds_are_deterministic() {
    let params = ClusterParams { n: 500, dim: 8, clusters: 6, noise: 0.1 };
    let data = clustered(&params, 99);
    let a = TauMg::build(data.clone(), TauMgParams::default());
    let b = TauMg::build(data.clone(), TauMgParams::default());
    let q = &data[123].clone();
    let ra = a.search(q, 5, &mut SearchStats::default());
    let rb = b.search(q, 5, &mut SearchStats::default());
    assert_eq!(ra, rb);
    let ha = Hnsw::build(data.clone(), HnswParams::default());
    let hb = Hnsw::build(data, HnswParams::default());
    assert_eq!(
        ha.search(q, 5, &mut SearchStats::default()),
        hb.search(q, 5, &mut SearchStats::default())
    );
}

/// Stats counters increase monotonically with ef.
#[test]
fn wider_beams_do_more_work() {
    let params = ClusterParams { n: 2000, dim: 16, clusters: 10, noise: 0.08 };
    let data = clustered(&params, 5);
    let idx = TauMg::build(data.clone(), TauMgParams::default());
    let q = &data[7];
    let mut prev = 0usize;
    for ef in [4usize, 16, 64] {
        let mut stats = SearchStats::default();
        idx.search_with_ef(q, 1, ef, &mut stats);
        assert!(
            stats.distance_computations >= prev,
            "ef {ef}: {} < {prev}",
            stats.distance_computations
        );
        prev = stats.distance_computations;
    }
}
