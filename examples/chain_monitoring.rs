//! Demo scenario 4 (paper Fig. 7): chat-based API chain monitoring.
//!
//! The proposed chain is shown to the user for confirmation; the user edits
//! it (inserting a `top_pagerank` step before the report) and then watches
//! the per-step progress feed during execution.
//!
//! ```sh
//! cargo run --release --example chain_monitoring
//! ```

use chatgraph::core::scenarios::monitoring;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{social_network, SocialParams};

fn main() {
    println!("Bootstrapping ChatGraph...");
    let (mut session, _) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");

    let graph = social_network(&SocialParams::default(), 41);
    let (out, events) = monitoring::run(&mut session, graph);
    println!("{}", out.render());
    println!("executed (edited) chain: {}", out.chain);
    println!("{} monitor events captured", events.len());
}
