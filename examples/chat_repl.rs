//! An interactive ChatGraph terminal session — the headless equivalent of
//! the paper's Gradio interface (Fig. 2): panel ① is stdout, panel ② is the
//! `:suggest` command, panel ③ is stdin.
//!
//! ```sh
//! cargo run --release --example chat_repl
//! ```
//!
//! or scripted:
//!
//! ```sh
//! printf ':social\nWhat communities exist in G?\n:quit\n' \
//!   | cargo run --release --example chat_repl
//! ```
//!
//! Commands: `:social` / `:molecule` / `:kg` generate and upload a graph,
//! `:upload <path>` reads an edge-list file, `:suggest` prints suggested
//! questions, `:plan` shows the execution plan (DAG of dependencies and
//! barriers) of the last proposed chain — during execution, CSR kernel
//! timings stream alongside it as `KernelTimed` events — `:faults
//! [seed [error [panic [delay]]]]` arms deterministic fault injection on
//! the chain supervisor (`:faults off` disarms it; retries, timeouts,
//! isolated panics and degraded steps stream as events) — `:store <path>`
//! attaches a durable single-file store (recovering it if it already
//! exists; every mutation barrier then streams `WalAppended` events) —
//! `:checkpoint` compacts the attached store — `:quit` exits.
//! Anything else is a prompt; proposed chains are executed immediately
//! (auto-confirm).

use chatgraph::apis::{ChainEvent, CollectingMonitor, FaultPlan, Plan, Value};
use chatgraph::core::prompt::Prompt;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{
    corrupt_kg, knowledge_graph, molecule, molecule_database, social_network, KgParams,
    MoleculeParams, SocialParams,
};
use chatgraph::graph::io;
use std::io::BufRead;

fn main() {
    println!("Bootstrapping ChatGraph (this finetunes the model once)...");
    let (mut session, _) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");
    session.set_database(molecule_database(30, &MoleculeParams::default(), 123));
    println!(
        "Ready. Type :social / :molecule / :kg to upload a graph, :suggest, :plan, :faults, :store, :checkpoint, :quit.\n"
    );

    let mut last_chain: Option<chatgraph::apis::ApiChain> = None;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim().to_owned();
        if line.is_empty() {
            continue;
        }
        match line.split_whitespace().next().unwrap_or("") {
            ":quit" | ":exit" => break,
            ":social" => {
                session.set_graph(social_network(&SocialParams::default(), 7));
                println!("uploaded a social network (120 nodes).");
            }
            ":molecule" => {
                session.set_graph(molecule(&MoleculeParams::default(), 7));
                println!("uploaded a molecule (24 atoms).");
            }
            ":kg" => {
                let mut g = knowledge_graph(&KgParams::default(), 7);
                let truth = corrupt_kg(&mut g, 0.08, 0.05, 7);
                session.set_graph(g);
                println!(
                    "uploaded a knowledge graph with {} wrong and {} missing facts injected.",
                    truth.injected_wrong.len(),
                    truth.removed.len()
                );
            }
            ":upload" => {
                let path = line.split_whitespace().nth(1).unwrap_or("");
                match std::fs::read_to_string(path).map_err(|e| e.to_string()).and_then(|t| {
                    io::parse_edge_list(&t).map_err(|e| e.to_string())
                }) {
                    Ok(g) => {
                        println!("uploaded '{}' ({} nodes).", g.name(), g.node_count());
                        session.set_graph(g);
                    }
                    Err(e) => println!("upload failed: {e}"),
                }
            }
            ":suggest" => {
                for q in session.suggest_questions() {
                    println!("  - {q}");
                }
            }
            ":faults" => {
                let args: Vec<&str> = line.split_whitespace().skip(1).collect();
                if args.first() == Some(&"off") {
                    session.set_fault_plan(None);
                    println!("fault injection disarmed.");
                } else {
                    let num = |i: usize, default: f64| {
                        args.get(i).and_then(|s| s.parse::<f64>().ok()).unwrap_or(default)
                    };
                    let seed = args
                        .first()
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or(7);
                    let plan = FaultPlan::new(seed)
                        .with_error_rate(num(1, 0.3))
                        .with_panic_rate(num(2, 0.1))
                        .with_delay(num(3, 0.0), 20)
                        .with_faults_per_step(1);
                    println!(
                        "fault injection armed: seed {seed}, error {:.2}, panic {:.2}, delay {:.2} \
                         (one faulty attempt per afflicted step; `:faults off` disarms).",
                        plan.error_rate, plan.panic_rate, plan.delay_rate
                    );
                    session.set_fault_plan(Some(plan));
                }
            }
            ":store" => {
                let path = line.split_whitespace().nth(1).unwrap_or("");
                if path.is_empty() {
                    match session.store() {
                        Some(store) => println!(
                            "store attached at '{}' (epoch {}, {} WAL byte(s)).",
                            store.path().display(),
                            store.epoch(),
                            store.wal_bytes()
                        ),
                        None => println!("usage: :store <path> — no store attached."),
                    }
                } else {
                    match session.open_store(path) {
                        Ok(opened) => {
                            match opened {
                                chatgraph::store::StoreOpened::Created => {
                                    println!("created a durable store at '{path}'.")
                                }
                                chatgraph::store::StoreOpened::Recovered(r) => println!(
                                    "recovered '{path}' to epoch {} ({} record(s) replayed, {} torn byte(s) dropped).",
                                    r.epoch, r.records_replayed, r.tail_dropped
                                ),
                            }
                            if let Err(e) = session.persist_model() {
                                println!("model persist failed: {e}");
                            }
                        }
                        Err(e) => println!("store open failed: {e}"),
                    }
                }
            }
            ":checkpoint" => match session.checkpoint_store() {
                Ok(r) => println!(
                    "checkpointed at epoch {}: file is {} byte(s), {} reclaimed.",
                    r.epoch, r.file_bytes, r.reclaimed
                ),
                Err(e) => println!("checkpoint failed: {e}"),
            },
            ":plan" => match &last_chain {
                None => println!("no chain proposed yet — ask a question first."),
                Some(chain) => match Plan::build(chain, session.registry()) {
                    Ok(plan) => {
                        println!(
                            "plan: {} steps, {} dependencies, {} barrier(s)",
                            plan.len(),
                            plan.dep_count(),
                            plan.barrier_count()
                        );
                        print!("{}", plan.render_text());
                        println!(
                            "(per-kernel CSR timings are emitted as KernelTimed events while the plan runs)"
                        );
                    }
                    Err(e) => println!("the chain does not lower to a plan: {e}"),
                },
            },
            _ => {
                let response = session.send(Prompt::text(line));
                println!("ChatGraph: {}", response.message);
                if response.chain.is_empty() {
                    continue;
                }
                last_chain = Some(response.chain.clone());
                let mut monitor = CollectingMonitor::new();
                match session.run_chain(&response.chain, &mut monitor) {
                    Ok(result) => {
                        for e in &monitor.events {
                            match e {
                                ChainEvent::Diagnostics { diagnostics } => {
                                    for note in diagnostics.render_text().lines() {
                                        println!("  note: {note}");
                                    }
                                }
                                ChainEvent::StepFinished { api, summary, .. } => {
                                    println!("  [{api}] {summary}");
                                }
                                ChainEvent::KernelTimed { kernel, micros, workers } => {
                                    println!("  (kernel {kernel}: {micros}us, {workers} worker(s))");
                                }
                                ChainEvent::StepRetried { api, attempt, backoff_ms, error, .. } => {
                                    println!(
                                        "  [{api}] retry #{attempt} after {backoff_ms}ms: {error}"
                                    );
                                }
                                ChainEvent::StepTimedOut { api, deadline_ms, .. } => {
                                    println!("  [{api}] exceeded its {deadline_ms}ms deadline");
                                }
                                ChainEvent::StepPanicked { api, message, .. } => {
                                    println!("  [{api}] panicked (isolated): {message}");
                                }
                                ChainEvent::DegradedResult { api, error, .. } => {
                                    println!("  [{api}] degraded, chain continues: {error}");
                                }
                                ChainEvent::WalAppended { epoch, records, bytes, .. } => {
                                    println!(
                                        "  (wal: epoch {epoch} committed, {records} record(s), {bytes} byte(s))"
                                    );
                                }
                                ChainEvent::Checkpointed { epoch, bytes, reclaimed } => {
                                    println!(
                                        "  (store checkpointed at epoch {epoch}: {bytes} byte(s), {reclaimed} reclaimed)"
                                    );
                                }
                                ChainEvent::Recovered { epoch, records_replayed, tail_dropped } => {
                                    println!(
                                        "  (store recovered to epoch {epoch}: {records_replayed} record(s) replayed, {tail_dropped} torn byte(s) dropped)"
                                    );
                                }
                                _ => {}
                            }
                        }
                        match result {
                            Value::Table(t) => println!("{}", t.to_text()),
                            Value::Report(r) => println!("{}", r.to_text()),
                            other => println!("=> {}", other.summary()),
                        }
                    }
                    Err(e) => println!("execution failed: {e}"),
                }
            }
        }
    }
    println!("bye.");
}
