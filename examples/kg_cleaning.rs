//! Demo scenario 3 (paper Fig. 6): chat-based graph cleaning.
//!
//! A knowledge graph is corrupted with wrong and missing `nationality`
//! facts, then handed to ChatGraph with the prompt "Clean G". The generated
//! chain detects incorrect edges, asks for confirmation, removes them,
//! re-derives the missing facts, adds them, and exports the cleaned graph.
//! The run is scored against the injected corruption ground truth.
//!
//! ```sh
//! cargo run --release --example kg_cleaning
//! ```

use chatgraph::core::scenarios::cleaning;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{corrupt_kg, knowledge_graph, KgParams};

fn main() {
    println!("Bootstrapping ChatGraph...");
    let (mut session, _) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");

    let mut kg = knowledge_graph(&KgParams::default(), 31);
    let truth = corrupt_kg(&mut kg, 0.08, 0.05, 31);
    println!(
        "Injected corruption: {} facts rewired to wrong targets, {} facts deleted.\n",
        truth.injected_wrong.len(),
        truth.removed.len()
    );

    let (out, stats) = cleaning::run(&mut session, kg, &truth);
    println!("{}", out.render());
    println!("executed chain: {}", out.chain);
    println!(
        "residual after cleaning: {} wrong edges, {} missing facts \
         ({} user confirmations along the way)",
        stats.residual_wrong, stats.residual_missing, stats.confirmations
    );
    assert_eq!(stats.residual_wrong, 0, "all injected noise should be removed");
    assert_eq!(stats.residual_missing, 0, "all deleted facts should be re-derived");
    println!("=> the cleaned graph matches the ground truth exactly.");
}
