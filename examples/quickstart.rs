//! Quickstart: build a ChatGraph session, upload a graph, ask a question,
//! confirm the proposed API chain, and read the answer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use chatgraph::apis::CollectingMonitor;
use chatgraph::core::prompt::Prompt;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{social_network, SocialParams};

fn main() {
    // 1. Bootstrap the full stack: API registry, τ-MG retrieval index, and a
    //    graph-aware model finetuned on the synthetic question→chain corpus.
    println!("Bootstrapping ChatGraph...");
    let (mut session, report) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");
    println!(
        "Finetuned on {} examples (train accuracy {:.2}).\n",
        report.examples, report.train.final_accuracy
    );

    // 2. The user uploads a social network and asks a question.
    let graph = social_network(&SocialParams::default(), 7);
    println!(
        "Uploading '{}' ({} nodes, {} edges).",
        graph.name(),
        graph.node_count(),
        graph.edge_count()
    );
    let response = session.send(Prompt::with_graph("What communities exist in G?", graph));
    println!("ChatGraph: {}\n", response.message);

    // 3. Suggested follow-up questions track the predicted graph type.
    println!("Suggested questions:");
    for q in session.suggest_questions() {
        println!("  - {q}");
    }

    // 4. The user confirms; the chain executes with step-by-step monitoring.
    let mut monitor = CollectingMonitor::new();
    let result = session
        .run_chain(&response.chain, &mut monitor)
        .expect("chain executes");
    println!("\nResult ({} steps executed):", monitor.finished_apis().len());
    match result {
        chatgraph::apis::Value::Table(t) => println!("{}", t.to_text()),
        other => println!("{}", other.summary()),
    }
}
