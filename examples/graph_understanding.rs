//! Demo scenario 1 (paper Fig. 4): chat-based graph understanding.
//!
//! The same prompt — "Write a brief report for G" — is sent twice, once with
//! a social network and once with a molecule attached. ChatGraph predicts
//! the graph type and routes to type-specific APIs: communities and
//! connectivity for the social network, toxicity and solubility for the
//! molecule, each ending in a composed report.
//!
//! ```sh
//! cargo run --release --example graph_understanding
//! ```

use chatgraph::core::scenarios::understanding;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{molecule, social_network, MoleculeParams, SocialParams};

fn main() {
    println!("Bootstrapping ChatGraph...");
    let (mut session, _) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");

    let social = social_network(&SocialParams::default(), 21);
    let out = understanding::run(&mut session, social);
    println!("{}", out.render());
    println!("executed chain: {}\n", out.chain);

    let mol = molecule(&MoleculeParams::default(), 21);
    let out = understanding::run(&mut session, mol);
    println!("{}", out.render());
    println!("executed chain: {}", out.chain);
}
