//! Demo scenario 2 (paper Fig. 5): chat-based graph comparison.
//!
//! "What molecules are similar to G" — ChatGraph invokes the similarity
//! search API against a molecule database and outputs the top two similar
//! molecules (GED-ranked).
//!
//! ```sh
//! cargo run --release --example molecule_similarity
//! ```

use chatgraph::core::scenarios::comparison;
use chatgraph::core::{ChatGraphConfig, ChatSession};
use chatgraph::graph::generators::{molecule_database, MoleculeParams};

fn main() {
    println!("Bootstrapping ChatGraph...");
    let (mut session, _) = ChatSession::bootstrap(ChatGraphConfig::default(), 384).expect("default config is valid");

    // The query molecule is an exact member of the database, so rank 1 is a
    // known answer (normalised GED 0) — an easy correctness check by eye.
    let db = molecule_database(30, &MoleculeParams::default(), 123);
    let query = db[5].clone();
    let out = comparison::run(&mut session, query, 30, 123);
    println!("{}", out.render());
    println!("executed chain: {}", out.chain);
}
