//! Shape assertions for every experiment (E5–E9), small-scale: these encode
//! in CI the qualitative claims EXPERIMENTS.md records from the full runs.

use chatgraph::ann::dataset::{clustered, queries, ClusterParams};
use chatgraph::ann::{
    recall_at_k, AnnIndex, FlatIndex, Hnsw, HnswParams, Metric, SearchStats, TauMg, TauMgParams,
};
use chatgraph::apis::registry;
use chatgraph::core::config::ChatGraphConfig;
use chatgraph::core::{
    evaluate, finetune, generate_corpus, ApiRetriever, CorpusParams, FinetuneMethod, GraphAwareLm,
};
use chatgraph::graph::generators::{barabasi_albert, BaParams};
use chatgraph::sequencer::{path_cover, CoverParams};

/// E5: path count grows with ℓ but stays within the degree-aware bound, and
/// coverage holds at every ℓ.
#[test]
fn e5_path_cover_growth_and_coverage() {
    let g = barabasi_albert(&BaParams { nodes: 120, attach: 2 }, 3);
    let max_deg = g.node_ids().map(|v| g.total_degree(v)).max().unwrap();
    let mut prev = 0usize;
    for l in 1..=4 {
        let cover = path_cover(&g, &CoverParams { max_length: l, dedup_singletons: false });
        assert!(cover.len() >= prev, "path count must not shrink with l");
        prev = cover.len();
        assert!(
            cover.len()
                <= chatgraph::sequencer::PathCover::degree_bound(g.node_count(), max_deg, l)
        );
        for root in g.node_ids().step_by(13) {
            assert!(cover.covers_ball(&g, root));
        }
    }
}

/// E6 (small): proximity-graph search computes far fewer distances than the
/// flat scan at high recall, and the gap widens with n.
#[test]
fn e6_sub_linear_scaling_shape() {
    let mut ratios = Vec::new();
    for &n in &[500usize, 2000] {
        let params = ClusterParams { n, dim: 16, clusters: 20, noise: 0.06 };
        let data = clustered(&params, 8);
        let qs = queries(&params, 20, 8);
        let flat = FlatIndex::build(data.clone(), Metric::L2);
        let taumg = TauMg::build(data, TauMgParams::default());
        let mut flat_dc = 0usize;
        let mut tau_dc = 0usize;
        let mut recall = 0.0;
        for q in &qs {
            let mut s1 = SearchStats::default();
            let truth = flat.search(q, 10, &mut s1);
            let mut s2 = SearchStats::default();
            let res = taumg.search(q, 10, &mut s2);
            flat_dc += s1.distance_computations;
            tau_dc += s2.distance_computations;
            recall += recall_at_k(&truth, &res, 10);
        }
        assert!(recall / 20.0 > 0.85, "recall {}", recall / 20.0);
        ratios.push(tau_dc as f64 / flat_dc as f64);
    }
    assert!(ratios[0] < 0.8, "graph search must beat linear scan: {ratios:?}");
    assert!(
        ratios[1] < ratios[0],
        "relative cost must shrink with n (sub-linear growth): {ratios:?}"
    );
}

/// E7 (small): moderate τ keeps at least as many edges as MRNG (τ = 0).
#[test]
fn e7_tau_densifies_graph() {
    let params = ClusterParams { n: 1500, dim: 16, clusters: 15, noise: 0.06 };
    let data = clustered(&params, 4);
    let mrng = TauMg::build_mrng(data.clone(), TauMgParams::default());
    let taumg = TauMg::build(data, TauMgParams { tau: 0.02, ..TauMgParams::default() });
    assert!(
        taumg.edge_count() >= mrng.edge_count(),
        "τ>0 must weaken occlusion: {} vs {}",
        taumg.edge_count(),
        mrng.edge_count()
    );
}

/// E8 (small): the full finetuning beats the untrained model and the
/// token-overlap ablation on held-out chain accuracy.
#[test]
fn e8_ablation_ordering() {
    let mut config = ChatGraphConfig::default();
    config.finetune.rollouts = 2;
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let corpus = generate_corpus(&CorpusParams { size: 160, small_graphs: true }, 66);
    let (train_set, test_set) = corpus.split_at(128);

    let untrained = {
        let lm = GraphAwareLm::new(&reg, &config);
        evaluate(&lm, &reg, &retriever, test_set, &config)
    };
    let full = {
        let mut lm = GraphAwareLm::new(&reg, &config);
        finetune(&mut lm, &reg, &retriever, train_set, FinetuneMethod::Full, &config);
        evaluate(&lm, &reg, &retriever, test_set, &config)
    };
    let overlap = {
        let mut lm = GraphAwareLm::new(&reg, &config);
        finetune(&mut lm, &reg, &retriever, train_set, FinetuneMethod::TokenOverlap, &config);
        evaluate(&lm, &reg, &retriever, test_set, &config)
    };
    assert!(full.exact_match > untrained.exact_match + 0.3, "full {full:?}");
    assert!(
        full.exact_match >= overlap.exact_match,
        "matching loss must not lose to token overlap: full {:.3} vs overlap {:.3}",
        full.exact_match,
        overlap.exact_match
    );
    assert!(full.avg_loss < untrained.avg_loss);
}

/// E9 (small): ANN retrieval returns (almost) the exact top-k and the hit
/// rate improves with k.
#[test]
fn e9_retrieval_hit_rate_monotone() {
    let reg = registry::standard();
    let config = ChatGraphConfig::default();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let corpus = generate_corpus(&CorpusParams { size: 48, small_graphs: true }, 70);
    let mut hit_rates = Vec::new();
    for &k in &[1usize, 5, 10] {
        let mut hits = 0;
        for e in &corpus {
            let mut stats = SearchStats::default();
            let names: Vec<String> = retriever
                .retrieve_k(&e.question, k, &mut stats)
                .into_iter()
                .map(|h| h.name)
                .collect();
            if e.truths.iter().any(|t| {
                t.api_names().iter().any(|api| names.iter().any(|n| n == api))
            }) {
                hits += 1;
            }
        }
        hit_rates.push(hits as f64 / corpus.len() as f64);
    }
    assert!(hit_rates[0] <= hit_rates[1] && hit_rates[1] <= hit_rates[2], "{hit_rates:?}");
    assert!(hit_rates[2] > 0.6, "k=10 hit rate too low: {hit_rates:?}");
}

/// HNSW baseline reaches comparable recall to τ-MG on the same data (the
/// E6 comparison is fair).
#[test]
fn e6_hnsw_baseline_is_competitive() {
    let params = ClusterParams { n: 1500, dim: 16, clusters: 15, noise: 0.06 };
    let data = clustered(&params, 12);
    let qs = queries(&params, 20, 12);
    let flat = FlatIndex::build(data.clone(), Metric::L2);
    let hnsw = Hnsw::build(data, HnswParams::default());
    let mut recall = 0.0;
    for q in &qs {
        let truth = flat.search(q, 10, &mut SearchStats::default());
        let res = hnsw.search(q, 10, &mut SearchStats::default());
        recall += recall_at_k(&truth, &res, 10);
    }
    assert!(recall / 20.0 > 0.8, "hnsw recall {}", recall / 20.0);
}
