//! Hermeticity guard: the workspace must build with no registry access, so
//! every dependency in every manifest has to be an in-workspace path
//! dependency (or a `workspace = true` reference to one). The actual rules
//! live in the analyzer's repolint manifest pass (diagnostic CG104) — this
//! test and `scripts/verify.sh`'s `repolint` run enforce one rule set.

use chatgraph::analyzer::repolint::{lint_manifest, workspace_manifests};
use std::fs;
use std::path::Path;

#[test]
fn all_dependencies_are_workspace_paths() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifests = workspace_manifests(root).expect("workspace layout");
    assert!(
        manifests.len() >= 10,
        "expected the root manifest plus at least 9 members, found {}",
        manifests.len()
    );
    let mut entries_seen = 0usize;
    let mut findings = Vec::new();
    for manifest in manifests {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        // The root manifest must additionally only name in-workspace
        // `chatgraph*` crates (belt and braces over the path-dep rule).
        let is_root = manifest.parent() == Some(root);
        let (diags, entries) = lint_manifest(&manifest.display().to_string(), &text, is_root);
        entries_seen += entries;
        findings.extend(diags);
    }
    assert!(
        entries_seen >= 9,
        "suspiciously few dependency entries parsed ({entries_seen}); \
         did the manifest layout change?"
    );
    assert!(
        findings.is_empty(),
        "non-hermetic dependencies found:\n{}",
        findings
            .iter()
            .map(|d| d.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The shared pass rejects the dependency shapes this repo bans, so a
/// regression in `lint_manifest` cannot silently disarm the guard above.
#[test]
fn manifest_pass_still_rejects_registry_shapes() {
    for bad in [
        "[dependencies]\nserde = \"1.0\"\n",
        "[dependencies]\nfoo = { git = \"https://example.com/foo\" }\n",
        "[dev-dependencies]\nbar = { version = \"0.3\", registry = \"private\" }\n",
    ] {
        let (diags, _) = lint_manifest("Cargo.toml", bad, false);
        assert!(!diags.is_empty(), "accepted: {bad}");
        assert!(diags.iter().all(|d| d.code == "CG104"), "{bad}");
    }
    let good = "[dependencies]\nchatgraph-support.workspace = true\n";
    let (diags, entries) = lint_manifest("Cargo.toml", good, true);
    assert!(diags.is_empty());
    assert_eq!(entries, 1);
}
