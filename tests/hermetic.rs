//! Hermeticity guard: the workspace must build with no registry access, so
//! every dependency in every manifest has to be an in-workspace path
//! dependency (or a `workspace = true` reference to one). This test parses
//! the manifests directly — if someone reintroduces a crates.io, git, or
//! versioned dependency, it fails with the offending manifest and line.

use std::fs;
use std::path::{Path, PathBuf};

/// All manifests in the workspace: the root plus every `crates/*` member.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    let mut members: Vec<PathBuf> = fs::read_dir(&crates)
        .expect("crates/ directory")
        .filter_map(|e| e.ok())
        .map(|e| e.path().join("Cargo.toml"))
        .filter(|p| p.is_file())
        .collect();
    members.sort();
    assert!(
        members.len() >= 9,
        "expected at least 9 member manifests, found {}",
        members.len()
    );
    out.extend(members);
    out
}

/// True for section headers that declare dependencies, e.g.
/// `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
/// `[target.'cfg(unix)'.build-dependencies]`.
fn is_dependency_section(header: &str) -> bool {
    let name = header.trim_matches(['[', ']']);
    name.ends_with("dependencies")
}

/// A single `name = spec` entry inside a dependency section is hermetic iff
/// it resolves inside the workspace: either `{ path = "..." }` / a
/// `workspace = true` reference, and never a bare version string, a
/// `version =` field, a `git =` field, or a `registry =` field.
fn check_entry(manifest: &Path, lineno: usize, line: &str, errors: &mut Vec<String>) {
    let Some((name, spec)) = line.split_once('=') else {
        return;
    };
    let name = name.trim();
    let spec = spec.trim();
    let fail = |errors: &mut Vec<String>, why: &str| {
        errors.push(format!(
            "{}:{}: dependency `{}` {}",
            manifest.display(),
            lineno,
            name,
            why
        ));
    };
    for banned in ["version", "git", "registry", "branch", "tag", "rev"] {
        if spec.contains(&format!("{banned} =")) || spec.contains(&format!("{banned}=")) {
            fail(errors, &format!("declares `{banned}` — not a path dependency"));
        }
    }
    if spec.starts_with('"') {
        fail(errors, "uses a bare version string (registry dependency)");
    }
    // `name.workspace = true` puts the marker in the key; inline tables
    // (`name = { workspace = true }` / `{ path = "..." }`) in the value.
    let workspace_ref = name.ends_with(".workspace") && spec == "true";
    if !workspace_ref && !spec.contains("path") && !spec.contains("workspace") {
        fail(errors, "is neither a `path` nor a `workspace = true` dependency");
    }
}

#[test]
fn all_dependencies_are_workspace_paths() {
    let mut errors = Vec::new();
    let mut entries_seen = 0usize;
    for manifest in workspace_manifests() {
        let text = fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("read {}: {e}", manifest.display()));
        let mut in_dep_section = false;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if line.starts_with('[') {
                in_dep_section = is_dependency_section(line);
                continue;
            }
            if in_dep_section {
                entries_seen += 1;
                check_entry(&manifest, i + 1, line, &mut errors);
            }
        }
    }
    assert!(
        entries_seen >= 9,
        "suspiciously few dependency entries parsed ({entries_seen}); \
         did the manifest layout change?"
    );
    assert!(
        errors.is_empty(),
        "non-hermetic dependencies found:\n{}",
        errors.join("\n")
    );
}

/// Belt and braces: the names of everything the umbrella crate links must
/// be in-workspace crates (all named `chatgraph*`).
#[test]
fn workspace_dependency_names_are_internal() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut in_section = false;
    let mut names = Vec::new();
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_section = is_dependency_section(line);
            continue;
        }
        if in_section {
            if let Some((name, _)) = line.split_once('=') {
                names.push(name.trim().to_string());
            }
        }
    }
    assert!(!names.is_empty());
    for name in names {
        assert!(
            name.starts_with("chatgraph"),
            "external dependency `{name}` in root manifest"
        );
    }
}
