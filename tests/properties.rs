//! Property-based tests (proptest) on cross-crate invariants.

use chatgraph::ged::{approx_ged, exact_ged, hungarian, matching_loss, CostModel};
use chatgraph::graph::{Direction, Graph};
use chatgraph::sequencer::{path_cover, sequentialize, CoverParams};
use proptest::prelude::*;

/// Strategy: a random small labelled graph with up to `max_n` nodes.
fn small_graph(max_n: usize, directed: bool) -> impl Strategy<Value = Graph> {
    let labels = prop::sample::select(vec!["A", "B", "C"]);
    (2..=max_n)
        .prop_flat_map(move |n| {
            (
                prop::collection::vec(labels.clone(), n),
                prop::collection::vec((0..n, 0..n), 0..(2 * n)),
            )
        })
        .prop_map(move |(labels, edges)| {
            let mut g = Graph::new(if directed {
                Direction::Directed
            } else {
                Direction::Undirected
            });
            let ids: Vec<_> = labels.into_iter().map(|l| g.add_node(l)).collect();
            for (a, b) in edges {
                if a != b {
                    let _ = g.add_edge(ids[a], ids[b], "e");
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GED(g, g) = 0 for both the approximation and exact search.
    #[test]
    fn ged_of_identical_graphs_is_zero(g in small_graph(7, false)) {
        let cost = CostModel::uniform();
        let approx = approx_ged(&g, &g, &cost);
        prop_assert_eq!(approx.upper_bound, 0.0);
        prop_assert_eq!(approx.lower_bound, 0.0);
        if let Some(exact) = exact_ged(&g, &g, &cost) {
            prop_assert_eq!(exact, 0.0);
        }
    }

    /// lower bound ≤ exact ≤ upper bound on random graph pairs.
    #[test]
    fn ged_bounds_bracket_exact(
        g1 in small_graph(6, false),
        g2 in small_graph(6, false),
    ) {
        let cost = CostModel::uniform();
        let approx = approx_ged(&g1, &g2, &cost);
        if let Some(exact) = exact_ged(&g1, &g2, &cost) {
            prop_assert!(approx.lower_bound <= exact + 1e-9,
                "lb {} > exact {exact}", approx.lower_bound);
            prop_assert!(exact <= approx.upper_bound + 1e-9,
                "exact {exact} > ub {}", approx.upper_bound);
        }
    }

    /// GED is symmetric under uniform costs (exact solver).
    #[test]
    fn exact_ged_symmetric(
        g1 in small_graph(5, false),
        g2 in small_graph(5, false),
    ) {
        let cost = CostModel::uniform();
        let d12 = exact_ged(&g1, &g2, &cost);
        let d21 = exact_ged(&g2, &g1, &cost);
        if let (Some(a), Some(b)) = (d12, d21) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// The matching loss is non-negative, zero on identity, and its
    /// regulariser counts exactly the unmatched nodes.
    #[test]
    fn matching_loss_invariants(
        g1 in small_graph(6, true),
        g2 in small_graph(6, true),
        alpha in 0.0f64..2.0,
    ) {
        let cost = CostModel::uniform();
        let l = matching_loss(&g1, &g2, alpha, &cost);
        prop_assert!(l.total >= 0.0);
        prop_assert!(l.edit_distance >= 0.0);
        prop_assert!((l.total - (l.edit_distance + alpha * l.regularizer)).abs() < 1e-9);
        let matched = l.matching.iter().filter(|(_, v)| v.is_some()).count();
        let deleted = l.matching.len() - matched;
        let inserted = g2.node_count() - matched;
        prop_assert_eq!(l.regularizer, (deleted + inserted) as f64);
        let id = matching_loss(&g1, &g1, alpha, &cost);
        prop_assert_eq!(id.total, 0.0);
    }

    /// Hungarian result equals brute force on small random instances.
    #[test]
    fn hungarian_is_optimal(
        n in 1usize..5,
        extra in 0usize..2,
        seed in 0u64..1000,
    ) {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        let m = n + extra;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.random_range(0.0..9.0)).collect())
            .collect();
        let (assignment, total) = hungarian(&cost);
        // brute force over permutations
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == cost.len() {
                *best = best.min(acc);
                return;
            }
            for c in 0..cost[0].len() {
                if !used[c] {
                    used[c] = true;
                    rec(cost, row + 1, used, acc + cost[row][c], best);
                    used[c] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(&cost, 0, &mut vec![false; m], 0.0, &mut best);
        prop_assert!((total - best).abs() < 1e-9, "hungarian {total} vs brute {best}");
        // assignment is an injection
        let mut seen = std::collections::HashSet::new();
        for &c in &assignment {
            prop_assert!(seen.insert(c));
        }
    }

    /// Every ℓ-ball is covered by the path cover, every path respects the
    /// length bound and adjacency, for random graphs and ℓ.
    #[test]
    fn path_cover_covers_and_respects_length(
        g in small_graph(12, false),
        l in 0usize..4,
    ) {
        let cover = path_cover(&g, &CoverParams { max_length: l, dedup_singletons: false });
        for p in &cover.paths {
            prop_assert!(p.len() <= l + 1);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
            }
        }
        for root in g.node_ids() {
            prop_assert!(cover.covers_ball(&g, root), "ball of {root} uncovered");
        }
    }

    /// Sequentialisation is deterministic and its token count is consistent
    /// with its sequences for arbitrary graphs.
    #[test]
    fn sequentialisation_deterministic(g in small_graph(10, false)) {
        let params = CoverParams::default();
        let a = sequentialize(&g, &params, true);
        let b = sequentialize(&g, &params, true);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.flat_tokens().len(), a.token_count());
    }

    /// compact() preserves node/edge counts and label histograms after
    /// arbitrary removals.
    #[test]
    fn compact_preserves_structure(
        g in small_graph(10, false),
        kills in prop::collection::vec(0usize..10, 0..4),
    ) {
        let mut g = g;
        for k in kills {
            let victim = g.node_ids().nth(k % g.node_count().max(1));
            if let Some(v) = victim {
                let _ = g.remove_node(v);
            }
            if g.node_count() == 0 {
                break;
            }
        }
        let (dense, _) = g.compact();
        prop_assert_eq!(dense.node_count(), g.node_count());
        prop_assert_eq!(dense.edge_count(), g.edge_count());
        prop_assert_eq!(dense.label_histogram(), g.label_histogram());
        prop_assert_eq!(dense.node_bound(), dense.node_count());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// τ-MG always returns the exact nearest neighbour of a *dataset member*
    /// queried with a generous beam (self-lookup floor), and its degree cap
    /// holds, for random cluster configurations.
    #[test]
    fn taumg_self_lookup_floor(
        seed in 0u64..50,
        clusters in 2usize..8,
    ) {
        use chatgraph::ann::dataset::{clustered, ClusterParams};
        use chatgraph::ann::{SearchStats, TauMg, TauMgParams};
        let params = ClusterParams { n: 200, dim: 8, clusters, noise: 0.05 };
        let data = clustered(&params, seed);
        let index = TauMg::build(data.clone(), TauMgParams::default());
        let mut misses = 0usize;
        for (i, v) in data.iter().enumerate().step_by(17) {
            let res = index.search_with_ef(v, 1, 64, &mut SearchStats::default());
            if res[0].0 != i && res[0].1 > 0.0 {
                misses += 1;
            }
        }
        prop_assert!(misses <= 1, "{misses} self-lookups missed");
    }
}
