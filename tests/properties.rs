//! Property-based tests on cross-crate invariants, running on the vendored
//! `chatgraph_support::prop` harness.

use chatgraph::ged::{approx_ged, exact_ged, hungarian, matching_loss, CostModel};
use chatgraph::graph::{Direction, Graph};
use chatgraph::sequencer::{path_cover, sequentialize, CoverParams};
use chatgraph_support::prop::{check, Config};
use chatgraph_support::rng::{RngExt, SliceRandom, StdRng};
use chatgraph_support::{prop_assert, prop_assert_eq};

/// Generator: a random small labelled graph with up to `max_n` nodes
/// (further tightened by the harness `size` so counterexamples shrink).
fn small_graph(rng: &mut StdRng, size: usize, max_n: usize, directed: bool) -> Graph {
    let cap = max_n.min(2 + size).max(2);
    let n = rng.random_range(2..=cap);
    let mut g = Graph::new(if directed {
        Direction::Directed
    } else {
        Direction::Undirected
    });
    let labels = ["A", "B", "C"];
    let ids: Vec<_> = (0..n)
        .map(|_| g.add_node(*labels.choose(rng).expect("non-empty")))
        .collect();
    let m = rng.random_range(0..2 * n);
    for _ in 0..m {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            let _ = g.add_edge(ids[a], ids[b], "e");
        }
    }
    g
}

/// GED(g, g) = 0 for both the approximation and exact search.
#[test]
fn ged_of_identical_graphs_is_zero() {
    check(
        "ged_of_identical_graphs_is_zero",
        Config::default().with_cases(64),
        |rng, size| small_graph(rng, size, 7, false),
        |g| {
            let cost = CostModel::uniform();
            let approx = approx_ged(g, g, &cost);
            prop_assert_eq!(approx.upper_bound, 0.0);
            prop_assert_eq!(approx.lower_bound, 0.0);
            if let Some(exact) = exact_ged(g, g, &cost) {
                prop_assert_eq!(exact, 0.0);
            }
            Ok(())
        },
    );
}

/// Shared check: lower bound ≤ exact ≤ upper bound for one graph pair.
fn check_bounds_bracket(g1: &Graph, g2: &Graph) -> Result<(), String> {
    let cost = CostModel::uniform();
    let approx = approx_ged(g1, g2, &cost);
    if let Some(exact) = exact_ged(g1, g2, &cost) {
        prop_assert!(
            approx.lower_bound <= exact + 1e-9,
            "lb {} > exact {exact}",
            approx.lower_bound
        );
        prop_assert!(
            exact <= approx.upper_bound + 1e-9,
            "exact {exact} > ub {}",
            approx.upper_bound
        );
    }
    Ok(())
}

/// lower bound ≤ exact ≤ upper bound on random graph pairs.
#[test]
fn ged_bounds_bracket_exact() {
    check(
        "ged_bounds_bracket_exact",
        Config::default().with_cases(64),
        |rng, size| {
            (
                small_graph(rng, size, 6, false),
                small_graph(rng, size, 6, false),
            )
        },
        |(g1, g2)| check_bounds_bracket(g1, g2),
    );
}

/// Shared check: GED is symmetric under uniform costs (exact solver).
fn check_exact_symmetric(g1: &Graph, g2: &Graph) -> Result<(), String> {
    let cost = CostModel::uniform();
    let d12 = exact_ged(g1, g2, &cost);
    let d21 = exact_ged(g2, g1, &cost);
    if let (Some(a), Some(b)) = (d12, d21) {
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
    Ok(())
}

/// GED is symmetric under uniform costs (exact solver).
#[test]
fn exact_ged_symmetric() {
    check(
        "exact_ged_symmetric",
        Config::default().with_cases(64),
        |rng, size| {
            (
                small_graph(rng, size, 5, false),
                small_graph(rng, size, 5, false),
            )
        },
        |(g1, g2)| check_exact_symmetric(g1, g2),
    );
}

/// Builds one of the recorded regression graphs: a list of node labels plus
/// `(src, dst)` index pairs, all edges labelled `"e"`.
fn regression_graph(labels: &[&str], edges: &[(usize, usize)]) -> Graph {
    let mut g = Graph::new(Direction::Undirected);
    let ids: Vec<_> = labels.iter().map(|l| g.add_node(*l)).collect();
    for &(a, b) in edges {
        g.add_edge(ids[a], ids[b], "e").expect("valid edge");
    }
    g
}

/// Regression: first shrunken counterexample recorded by the old proptest
/// harness (formerly `tests/properties.proptest-regressions`) — a size-2
/// graph against a size-4 graph sharing one label.
#[test]
fn regression_ged_pair_unbalanced_sizes() {
    let g1 = regression_graph(&["A", "B"], &[]);
    let g2 = regression_graph(&["C", "B", "B", "A"], &[(2, 3), (1, 3)]);
    check_bounds_bracket(&g1, &g2).unwrap();
    check_exact_symmetric(&g1, &g2).unwrap();
}

/// Regression: second recorded counterexample — both graphs carry a single
/// `"e"` edge out of their first node.
#[test]
fn regression_ged_pair_single_edges() {
    let g1 = regression_graph(&["C", "A"], &[(0, 1)]);
    let g2 = regression_graph(&["B", "A", "A", "C"], &[(0, 1)]);
    check_bounds_bracket(&g1, &g2).unwrap();
    check_exact_symmetric(&g1, &g2).unwrap();
}

/// The matching loss is non-negative, zero on identity, and its
/// regulariser counts exactly the unmatched nodes.
#[test]
fn matching_loss_invariants() {
    check(
        "matching_loss_invariants",
        Config::default().with_cases(64),
        |rng, size| {
            (
                small_graph(rng, size, 6, true),
                small_graph(rng, size, 6, true),
                rng.random_range(0.0f64..2.0),
            )
        },
        |(g1, g2, alpha)| {
            let alpha = *alpha;
            let cost = CostModel::uniform();
            let l = matching_loss(g1, g2, alpha, &cost);
            prop_assert!(l.total >= 0.0);
            prop_assert!(l.edit_distance >= 0.0);
            prop_assert!((l.total - (l.edit_distance + alpha * l.regularizer)).abs() < 1e-9);
            let matched = l.matching.iter().filter(|(_, v)| v.is_some()).count();
            let deleted = l.matching.len() - matched;
            let inserted = g2.node_count() - matched;
            prop_assert_eq!(l.regularizer, (deleted + inserted) as f64);
            let id = matching_loss(g1, g1, alpha, &cost);
            prop_assert_eq!(id.total, 0.0);
            Ok(())
        },
    );
}

/// Hungarian result equals brute force on small random instances.
#[test]
fn hungarian_is_optimal() {
    check(
        "hungarian_is_optimal",
        Config::default().with_cases(64),
        |rng, _size| {
            let n = rng.random_range(1usize..5);
            let m = n + rng.random_range(0usize..2);
            let cost: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.random_range(0.0..9.0)).collect())
                .collect();
            cost
        },
        |cost| {
            let m = cost[0].len();
            let (assignment, total) = hungarian(cost);
            // brute force over permutations
            fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
                if row == cost.len() {
                    *best = best.min(acc);
                    return;
                }
                for c in 0..cost[0].len() {
                    if !used[c] {
                        used[c] = true;
                        rec(cost, row + 1, used, acc + cost[row][c], best);
                        used[c] = false;
                    }
                }
            }
            let mut best = f64::INFINITY;
            rec(cost, 0, &mut vec![false; m], 0.0, &mut best);
            prop_assert!(
                (total - best).abs() < 1e-9,
                "hungarian {total} vs brute {best}"
            );
            // assignment is an injection
            let mut seen = std::collections::HashSet::new();
            for &c in &assignment {
                prop_assert!(seen.insert(c));
            }
            Ok(())
        },
    );
}

/// Every ℓ-ball is covered by the path cover, every path respects the
/// length bound and adjacency, for random graphs and ℓ.
#[test]
fn path_cover_covers_and_respects_length() {
    check(
        "path_cover_covers_and_respects_length",
        Config::default().with_cases(64),
        |rng, size| {
            (
                small_graph(rng, size, 12, false),
                rng.random_range(0usize..4),
            )
        },
        |(g, l)| {
            let cover = path_cover(
                g,
                &CoverParams {
                    max_length: *l,
                    dedup_singletons: false,
                },
            );
            for p in &cover.paths {
                prop_assert!(p.len() <= l + 1);
                for w in p.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
                }
            }
            for root in g.node_ids() {
                prop_assert!(cover.covers_ball(g, root), "ball of {root} uncovered");
            }
            Ok(())
        },
    );
}

/// Sequentialisation is deterministic and its token count is consistent
/// with its sequences for arbitrary graphs.
#[test]
fn sequentialisation_deterministic() {
    check(
        "sequentialisation_deterministic",
        Config::default().with_cases(64),
        |rng, size| small_graph(rng, size, 10, false),
        |g| {
            let params = CoverParams::default();
            let a = sequentialize(g, &params, true);
            let b = sequentialize(g, &params, true);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.flat_tokens().len(), a.token_count());
            Ok(())
        },
    );
}

/// compact() preserves node/edge counts and label histograms after
/// arbitrary removals.
#[test]
fn compact_preserves_structure() {
    check(
        "compact_preserves_structure",
        Config::default().with_cases(64),
        |rng, size| {
            let g = small_graph(rng, size, 10, false);
            let kills: Vec<usize> = (0..rng.random_range(0usize..4))
                .map(|_| rng.random_range(0usize..10))
                .collect();
            (g, kills)
        },
        |(g, kills)| {
            let mut g = g.clone();
            for &k in kills {
                let victim = g.node_ids().nth(k % g.node_count().max(1));
                if let Some(v) = victim {
                    let _ = g.remove_node(v);
                }
                if g.node_count() == 0 {
                    break;
                }
            }
            let (dense, _) = g.compact();
            prop_assert_eq!(dense.node_count(), g.node_count());
            prop_assert_eq!(dense.edge_count(), g.edge_count());
            prop_assert_eq!(dense.label_histogram(), g.label_histogram());
            prop_assert_eq!(dense.node_bound(), dense.node_count());
            Ok(())
        },
    );
}

/// τ-MG always returns the exact nearest neighbour of a *dataset member*
/// queried with a generous beam (self-lookup floor), and its degree cap
/// holds, for random cluster configurations.
#[test]
fn taumg_self_lookup_floor() {
    check(
        "taumg_self_lookup_floor",
        Config::default().with_cases(16),
        |rng, _size| (rng.random_range(0u64..50), rng.random_range(2usize..8)),
        |&(seed, clusters)| {
            use chatgraph::ann::dataset::{clustered, ClusterParams};
            use chatgraph::ann::{SearchStats, TauMg, TauMgParams};
            let params = ClusterParams {
                n: 200,
                dim: 8,
                clusters,
                noise: 0.05,
            };
            let data = clustered(&params, seed);
            let index = TauMg::build(data.clone(), TauMgParams::default());
            let mut misses = 0usize;
            for (i, v) in data.iter().enumerate().step_by(17) {
                let res = index.search_with_ef(v, 1, 64, &mut SearchStats::default());
                if res[0].0 != i && res[0].1 > 0.0 {
                    misses += 1;
                }
            }
            prop_assert!(misses <= 1, "{misses} self-lookups missed");
            Ok(())
        },
    );
}
