//! Cross-crate integration tests: each test exercises a pipeline spanning
//! several crates, complementing the per-module unit tests.

use chatgraph::apis::{
    execute_chain, registry, ApiCall, ApiChain, ChainError, CollectingMonitor, ExecContext,
    SilentMonitor, Value,
};
use chatgraph::core::config::ChatGraphConfig;
use chatgraph::core::generation::candidate_apis;
use chatgraph::core::{
    evaluate, finetune, generate_corpus, ApiRetriever, ChainGenerator, CorpusParams,
    FinetuneMethod, GraphAwareLm,
};
use chatgraph::ged::{approx_ged, matching_loss, CostModel};
use chatgraph::graph::generators::{
    corrupt_kg, knowledge_graph, molecule, molecule_database, social_network, KgParams,
    MoleculeParams, SocialParams,
};
use chatgraph::graph::{io, Graph};
use chatgraph::sequencer::{sequentialize, CoverParams};

/// Graph → edge-list text → graph → JSON → graph survives with identical
/// structure and still sequentialises identically.
#[test]
fn serialisation_roundtrip_preserves_sequentialisation() {
    let g = molecule(&MoleculeParams::default(), 5);
    let text = io::to_edge_list(&g).unwrap();
    let g2 = io::parse_edge_list(&text).unwrap();
    let g3 = io::from_json(&io::to_json(&g2)).unwrap();
    let params = CoverParams::default();
    assert_eq!(
        sequentialize(&g, &params, true),
        sequentialize(&g3, &params, true)
    );
}

/// An executed cleaning chain leaves a KG whose inference APIs find nothing
/// further to fix (a fixpoint check across apis + graph crates).
#[test]
fn cleaning_chain_reaches_fixpoint() {
    let mut g = knowledge_graph(&KgParams::default(), 77);
    corrupt_kg(&mut g, 0.12, 0.08, 77);
    let reg = registry::standard();
    let chain = ApiChain::from_names([
        "detect_incorrect_edges",
        "remove_edges",
        "detect_missing_edges",
        "add_edges",
    ]);
    let mut ctx = ExecContext::new(g);
    execute_chain(&reg, &chain, &mut ctx, &mut SilentMonitor).unwrap();
    // Second pass must detect nothing.
    let mut ctx2 = ExecContext::new(ctx.graph.clone());
    let wrong = execute_chain(
        &reg,
        &ApiChain::from_names(["detect_incorrect_edges"]),
        &mut ctx2,
        &mut SilentMonitor,
    )
    .unwrap();
    assert_eq!(wrong.as_edge_list().unwrap().len(), 0);
    let missing = execute_chain(
        &reg,
        &ApiChain::from_names(["detect_missing_edges"]),
        &mut ctx2,
        &mut SilentMonitor,
    )
    .unwrap();
    assert_eq!(missing.as_edge_list().unwrap().len(), 0);
}

/// Similarity search run through the executor agrees with calling the GED
/// crate directly.
#[test]
fn similarity_search_matches_direct_ged_ranking() {
    let db = molecule_database(12, &MoleculeParams::default(), 9);
    let query = db[3].clone();
    let reg = registry::standard();
    let mut ctx = ExecContext::new(query.clone()).with_database(db.clone());
    let out = execute_chain(
        &reg,
        &ApiChain {
            steps: vec![ApiCall::new("similarity_search").with_param("k", "1")],
        },
        &mut ctx,
        &mut SilentMonitor,
    )
    .unwrap();
    let table = out.as_table().unwrap();
    assert_eq!(table.rows[0][1], "db-mol-3");
    // Direct check: GED of query to db-mol-3 is zero.
    let ged = approx_ged(&query, &db[3], &CostModel::uniform());
    assert_eq!(ged.upper_bound, 0.0);
}

/// Chains that execute edit APIs require confirmation; rejecting stops the
/// run before any mutation.
#[test]
fn rejected_confirmation_leaves_graph_untouched() {
    let mut g = knowledge_graph(&KgParams::default(), 3);
    corrupt_kg(&mut g, 0.1, 0.0, 3);
    let edges_before = g.edge_count();
    let reg = registry::standard();
    let chain = ApiChain::from_names(["detect_incorrect_edges", "remove_edges"]);
    let mut ctx = ExecContext::new(g);
    let mut monitor = CollectingMonitor::with_answers([false]);
    let err = execute_chain(&reg, &chain, &mut ctx, &mut monitor).unwrap_err();
    assert!(matches!(err, ChainError::Rejected(1, _)));
    assert_eq!(ctx.graph.edge_count(), edges_before);
}

/// The full retrieval → generation → execution loop works for an untrained
/// model too (it just produces a poorer chain) — nothing panics anywhere in
/// the stack.
#[test]
fn untrained_end_to_end_is_robust() {
    let config = ChatGraphConfig::default();
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let lm = GraphAwareLm::new(&reg, &config);
    let generator = ChainGenerator::default();
    let g = social_network(&SocialParams::default(), 1);
    let candidates = candidate_apis(&reg, &retriever, "tell me about G", Some(&g));
    let chain = generator.generate_greedy(&lm, "tell me about G", Some(&g), &candidates);
    if !chain.is_empty() {
        let mut ctx = ExecContext::new(g);
        // Edit APIs would ask for confirmation; answer yes and accept
        // whatever happens short of a panic.
        let _ = execute_chain(&reg, &chain, &mut ctx, &mut CollectingMonitor::new());
    }
}

/// Finetuning transfers across graph *sizes*: train on small graphs,
/// evaluate on demo-sized ones.
#[test]
fn finetuning_transfers_to_larger_graphs() {
    let mut config = ChatGraphConfig::default();
    config.finetune.rollouts = 2;
    let reg = registry::standard();
    let retriever = ApiRetriever::build(&reg, &config.retrieval);
    let mut lm = GraphAwareLm::new(&reg, &config);
    let train_set = generate_corpus(&CorpusParams { size: 128, small_graphs: true }, 51);
    finetune(&mut lm, &reg, &retriever, &train_set, FinetuneMethod::Full, &config);
    let test_set = generate_corpus(&CorpusParams { size: 32, small_graphs: false }, 52);
    let eval = evaluate(&lm, &reg, &retriever, &test_set, &config);
    assert!(
        eval.exact_match >= 0.5,
        "size transfer should hold: {eval:?}"
    );
}

/// The matching loss of a generated-vs-truth chain is consistent with the
/// chains' graph encodings (cross-check apis::ApiChain with ged).
#[test]
fn chain_graph_encoding_and_loss_agree() {
    let truth = ApiChain::from_names(["a", "b", "c"]);
    let reversed = ApiChain::from_names(["c", "b", "a"]);
    let truth_g = truth.to_graph().unwrap();
    let same = matching_loss(&truth_g, &truth_g, 0.5, &CostModel::uniform());
    assert_eq!(same.total, 0.0);
    let rev = matching_loss(&reversed.to_graph().unwrap(), &truth_g, 0.5, &CostModel::uniform());
    assert!(
        rev.total > 0.0,
        "direction must matter for chain comparison: {rev:?}"
    );
}

/// Every API in the standard registry executes against a suitable graph
/// without panicking (smoke across the whole catalogue).
#[test]
fn every_api_is_executable() {
    let reg = registry::standard();
    let db = molecule_database(4, &MoleculeParams::default(), 2);
    let tiny = MoleculeParams { atoms: 6, rings: 1, double_bond_prob: 0.1 };
    for desc in reg.descriptors() {
        let graph: Graph = match desc.category {
            // Exact GED is exponential; exercise it on a small molecule.
            _ if desc.name == "graph_edit_distance_exact" => molecule(&tiny, 4),
            chatgraph::apis::ApiCategory::Molecule
            | chatgraph::apis::ApiCategory::Similarity => molecule(&MoleculeParams::default(), 4),
            chatgraph::apis::ApiCategory::Knowledge => knowledge_graph(&KgParams::default(), 4),
            _ => social_network(&SocialParams::default(), 4),
        };
        let database = if desc.name == "graph_edit_distance_exact" {
            molecule_database(4, &tiny, 2)
        } else {
            db.clone()
        };
        let mut ctx = ExecContext::new(graph).with_database(database);
        let mut call = ApiCall::new(&desc.name);
        if desc.name == "count_pattern_matches" {
            call = call.with_param("pattern", "node 0 C;node 1 C;edge 0 1 single");
        }
        if desc.name == "relabel_nodes" {
            call = call.with_param("from", "Person").with_param("to", "User");
        }
        // EdgeList-input APIs get an empty edit set.
        let input = match desc.input {
            chatgraph::apis::ValueType::EdgeList => Value::EdgeList(vec![]),
            _ => Value::Unit,
        };
        let result = reg.call(&desc.name, &mut ctx, input, &call);
        assert!(result.is_ok(), "{} failed: {:?}", desc.name, result.err());
        let out = result.unwrap();
        assert_eq!(
            out.value_type(),
            desc.output,
            "{} output type mismatch",
            desc.name
        );
    }
}
